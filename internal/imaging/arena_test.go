package imaging

import (
	"math"
	"testing"

	"snmatch/internal/arena"
)

// dirtyArena returns an arena whose free lists already hold buffers
// full of garbage, so a test catches any In-variant that forgets it
// must see zeroed memory.
func dirtyArena() *arena.Arena {
	a := arena.New()
	for _, n := range []int{31, 257, 4096} {
		f := arena.Slice[float32](a, n)
		for i := range f {
			f[i] = -12345.5
		}
		b := arena.Slice[uint8](a, n)
		for i := range b {
			b[i] = 0xAB
		}
		d := arena.Slice[float64](a, n)
		for i := range d {
			d[i] = 777.25
		}
	}
	a.Reset()
	return a
}

func testRaster(w, h int) *FloatGray {
	f := NewFloatGray(w, h)
	s := uint32(99)
	for i := range f.Pix {
		s = s*1664525 + 1013904223
		f.Pix[i] = float32(s>>16) / 977
	}
	return f
}

func floatsEqual(t *testing.T, label string, want, got []float32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
			t.Fatalf("%s: pixel %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestArenaVariantsBitIdentical runs every In-variant twice on a dirty,
// reused arena and requires bit equality with the heap path each time.
func TestArenaVariantsBitIdentical(t *testing.T) {
	a := dirtyArena()
	f := testRaster(53, 47)
	g := f.ToGray()
	kernel := GaussianKernel(1.6, 0)
	for round := 0; round < 2; round++ {
		floatsEqual(t, "conv", f.ConvolveSeparable(kernel).Pix, f.ConvolveSeparableIn(a, kernel).Pix)

		hgx, hgy := f.Sobel()
		agx, agy := f.SobelIn(a)
		floatsEqual(t, "sobel gx", hgx.Pix, agx.Pix)
		floatsEqual(t, "sobel gy", hgy.Pix, agy.Pix)

		floatsEqual(t, "resize", f.ResizeBilinear(31, 29).Pix, f.ResizeBilinearIn(a, 31, 29).Pix)
		floatsEqual(t, "down", f.Downsample2().Pix, f.Downsample2In(a).Pix)
		floatsEqual(t, "blur", f.GaussianBlur(2.1).Pix, f.GaussianBlurIn(a, 2.1).Pix)
		floatsEqual(t, "sub", f.Subtract(f).Pix, f.SubtractIn(a, f).Pix)

		hb := g.GaussianBlur(2)
		ab := g.GaussianBlurIn(a, 2)
		for i := range hb.Pix {
			if hb.Pix[i] != ab.Pix[i] {
				t.Fatalf("gray blur: pixel %d = %d, want %d", i, ab.Pix[i], hb.Pix[i])
			}
		}

		hi := NewIntegralSum(g)
		ai := NewIntegralSumIn(a, g)
		for i := range hi.Sum {
			if hi.Sum[i] != ai.Sum[i] {
				t.Fatalf("integral: entry %d = %v, want %v", i, ai.Sum[i], hi.Sum[i])
			}
		}

		hk := GaussianKernel(0.84, 0)
		ak := GaussianKernelIn(a, 0.84, 0)
		floatsEqual(t, "kernel", hk, ak)

		a.Reset()
	}
}

// TestArenaRastersZeroed pins the make() contract of arena-backed
// raster constructors: reused pixel buffers come back zeroed.
func TestArenaRastersZeroed(t *testing.T) {
	a := arena.New()
	f := NewFloatGrayIn(a, 16, 16)
	for i := range f.Pix {
		f.Pix[i] = 3
	}
	g := NewGrayIn(a, 16, 16)
	for i := range g.Pix {
		g.Pix[i] = 7
	}
	a.Reset()
	f2 := NewFloatGrayIn(a, 16, 16)
	g2 := NewGrayIn(a, 16, 16)
	for i := range f2.Pix {
		if f2.Pix[i] != 0 {
			t.Fatalf("reused FloatGray not zeroed at %d", i)
		}
	}
	for i := range g2.Pix {
		if g2.Pix[i] != 0 {
			t.Fatalf("reused Gray not zeroed at %d", i)
		}
	}
}
