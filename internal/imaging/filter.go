package imaging

import (
	"math"

	"snmatch/internal/arena"
)

// GaussianKernel returns a normalised 1-D Gaussian kernel for the given
// sigma. The radius defaults to ceil(3*sigma) when radius <= 0.
func GaussianKernel(sigma float64, radius int) []float32 {
	return GaussianKernelIn(nil, sigma, radius)
}

// GaussianKernelIn is GaussianKernel with the kernel drawn from the
// arena; the weights are recomputed either way, so pooled kernels are
// bit-identical to fresh ones.
func GaussianKernelIn(a *arena.Arena, sigma float64, radius int) []float32 {
	if sigma <= 0 {
		k := arena.Slice[float32](a, 1)
		k[0] = 1
		return k
	}
	if radius <= 0 {
		radius = int(math.Ceil(3 * sigma))
		if radius < 1 {
			radius = 1
		}
	}
	k := arena.Slice[float32](a, 2*radius+1)
	sum := 0.0
	inv := 1 / (2 * sigma * sigma)
	for i := -radius; i <= radius; i++ {
		v := math.Exp(-float64(i*i) * inv)
		k[i+radius] = float32(v)
		sum += v
	}
	for i := range k {
		k[i] = float32(float64(k[i]) / sum)
	}
	return k
}

// ConvolveSeparable applies the 1-D kernel horizontally then vertically
// with replicate border handling, returning a new raster. The two
// passes are fused through a ring buffer of horizontally-convolved
// rows, so the full intermediate raster of ConvolveH(...).ConvolveV(...)
// is never materialised; each pass runs the same per-row kernels, so
// the output is bit-identical to the unfused composition.
func (f *FloatGray) ConvolveSeparable(kernel []float32) *FloatGray {
	return f.ConvolveSeparableIn(nil, kernel)
}

// ConvolveSeparableIn is ConvolveSeparable with the output raster and
// the fused-pass scratch (ring buffer, source-row table) drawn from the
// arena.
func (f *FloatGray) ConvolveSeparableIn(a *arena.Arena, kernel []float32) *FloatGray {
	r := len(kernel) / 2
	k := len(kernel)
	out := NewFloatGrayIn(a, f.W, f.H)
	w, h := f.W, f.H
	if w == 0 || h == 0 {
		return out
	}
	// ring holds the last k horizontally-convolved rows; row j lives at
	// slot j%k, and the window [y-r, y+r] never exceeds k rows.
	ring := arena.Slice[float32](a, k*w)
	srcs := arena.Slice[[]float32](a, k)
	computed := -1
	for y := 0; y < h; y++ {
		// The window's last tap reads row y+(k-1)-r (== y+r for odd
		// kernels); using k-1-r keeps even-length kernels from
		// computing an extra row whose ring slot would collide with
		// the window's first row.
		need := y + (k - 1 - r)
		if need > h-1 {
			need = h - 1
		}
		for computed < need {
			computed++
			dst := ring[(computed%k)*w : (computed%k)*w+w]
			convRowH(dst, f.Pix[computed*w:(computed+1)*w], kernel, r)
		}
		for i := range kernel {
			sy := y + i - r
			if sy < 0 {
				sy = 0
			} else if sy >= h {
				sy = h - 1
			}
			srcs[i] = ring[(sy%k)*w : (sy%k)*w+w]
		}
		convAccumV(out.Pix[y*w:(y+1)*w], srcs, kernel)
	}
	return out
}

// ConvolveH applies the 1-D kernel along rows with replicate borders.
// Interior pixels run a branch-free window loop; only the <= radius
// border columns pay for clamping. Per-pixel tap accumulation order is
// unchanged (ascending kernel index), so results are bit-identical to
// the naive per-tap clamped loop.
func (f *FloatGray) ConvolveH(kernel []float32) *FloatGray {
	r := len(kernel) / 2
	out := NewFloatGray(f.W, f.H)
	w := f.W
	for y := 0; y < f.H; y++ {
		convRowH(out.Pix[y*w:(y+1)*w], f.Pix[y*w:(y+1)*w], kernel, r)
	}
	return out
}

// convRowH convolves one row into dst. Interior pixels run eight
// independent accumulator chains per step to keep the FP units busy;
// each pixel still sums its taps in ascending kernel order, so the
// result matches the naive per-tap clamped loop bit for bit.
func convRowH(dst, row, kernel []float32, r int) {
	w := len(row)
	lo, hi := r, w-r
	if hi < lo {
		hi = lo
	}
	for x := 0; x < lo && x < w; x++ {
		dst[x] = convClampedTap(row, kernel, x, r)
	}
	x := lo
	for ; x+8 <= hi; x += 8 {
		base := x - r
		var a0, a1, a2, a3, a4, a5, a6, a7 float32
		for k, kv := range kernel {
			win := row[base+k : base+k+8]
			a0 += win[0] * kv
			a1 += win[1] * kv
			a2 += win[2] * kv
			a3 += win[3] * kv
			a4 += win[4] * kv
			a5 += win[5] * kv
			a6 += win[6] * kv
			a7 += win[7] * kv
		}
		dst[x] = a0
		dst[x+1] = a1
		dst[x+2] = a2
		dst[x+3] = a3
		dst[x+4] = a4
		dst[x+5] = a5
		dst[x+6] = a6
		dst[x+7] = a7
	}
	for ; x < hi; x++ {
		win := row[x-r : x-r+len(kernel)]
		var acc float32
		for k, kv := range kernel {
			acc += win[k] * kv
		}
		dst[x] = acc
	}
	for x := hi; x < w; x++ {
		dst[x] = convClampedTap(row, kernel, x, r)
	}
}

// convClampedTap is the replicate-border tap loop shared by the border
// columns of ConvolveH. The taps split into a left-clamped run, an
// in-range run and a right-clamped run — each tap contributes the same
// product in the same (ascending k) order as the branchy per-tap clamp.
func convClampedTap(row, kernel []float32, x, r int) float32 {
	var acc float32
	w := len(row)
	k := 0
	for kEnd := min(r-x, len(kernel)); k < kEnd; k++ {
		acc += row[0] * kernel[k]
	}
	for kEnd := min(w-x+r, len(kernel)); k < kEnd; k++ {
		acc += row[x+k-r] * kernel[k]
	}
	for ; k < len(kernel); k++ {
		acc += row[w-1] * kernel[k]
	}
	return acc
}

// ConvolveV applies the 1-D kernel along columns with replicate borders.
// The sweep is row-major — for every output row the contributing source
// rows are streamed sequentially — which preserves the exact per-pixel
// tap accumulation order (ascending kernel index, so results are
// bit-identical to the naive column walk) while touching memory in
// cache order.
func (f *FloatGray) ConvolveV(kernel []float32) *FloatGray {
	r := len(kernel) / 2
	out := NewFloatGray(f.W, f.H)
	w, h := f.W, f.H
	srcs := make([][]float32, len(kernel))
	for y := 0; y < h; y++ {
		orow := out.Pix[y*w : (y+1)*w]
		for k := range kernel {
			sy := y + k - r
			if sy < 0 {
				sy = 0
			} else if sy >= h {
				sy = h - 1
			}
			srcs[k] = f.Pix[sy*w : sy*w+w]
		}
		convAccumV(orow, srcs, kernel)
	}
	return out
}

// convAccumV writes the vertical tap accumulation of srcs (one source
// row per kernel tap) into dst. Blocks of eight columns accumulate in
// registers across all taps (ascending kernel order per pixel, as in
// the naive column walk) and store each output exactly once.
func convAccumV(dst []float32, srcs [][]float32, kernel []float32) {
	w := len(dst)
	x := 0
	for ; x+8 <= w; x += 8 {
		var a0, a1, a2, a3, a4, a5, a6, a7 float32
		for k, kv := range kernel {
			src := srcs[k][x : x+8]
			a0 += src[0] * kv
			a1 += src[1] * kv
			a2 += src[2] * kv
			a3 += src[3] * kv
			a4 += src[4] * kv
			a5 += src[5] * kv
			a6 += src[6] * kv
			a7 += src[7] * kv
		}
		dst[x] = a0
		dst[x+1] = a1
		dst[x+2] = a2
		dst[x+3] = a3
		dst[x+4] = a4
		dst[x+5] = a5
		dst[x+6] = a6
		dst[x+7] = a7
	}
	for ; x < w; x++ {
		var acc float32
		for k, kv := range kernel {
			acc += srcs[k][x] * kv
		}
		dst[x] = acc
	}
}

// GaussianBlur returns f blurred with an isotropic Gaussian of the given
// sigma. Sigma <= 0 returns a copy.
func (f *FloatGray) GaussianBlur(sigma float64) *FloatGray { return f.GaussianBlurIn(nil, sigma) }

// GaussianBlurIn is GaussianBlur with every intermediate (kernel,
// fused-pass scratch, output raster) drawn from the arena.
func (f *FloatGray) GaussianBlurIn(a *arena.Arena, sigma float64) *FloatGray {
	if sigma <= 0 {
		out := NewFloatGrayIn(a, f.W, f.H)
		copy(out.Pix, f.Pix)
		return out
	}
	return f.ConvolveSeparableIn(a, GaussianKernelIn(a, sigma, 0))
}

// GaussianBlur returns g blurred with an isotropic Gaussian.
func (g *Gray) GaussianBlur(sigma float64) *Gray { return g.GaussianBlurIn(nil, sigma) }

// GaussianBlurIn is GaussianBlur with the float round-trip and result
// drawn from the arena.
func (g *Gray) GaussianBlurIn(a *arena.Arena, sigma float64) *Gray {
	if sigma <= 0 {
		out := NewGrayIn(a, g.W, g.H)
		copy(out.Pix, g.Pix)
		return out
	}
	return g.ToFloatIn(a).GaussianBlurIn(a, sigma).ToGrayIn(a)
}

// GaussianBlur blurs each RGB channel independently.
func (m *Image) GaussianBlur(sigma float64) *Image {
	if sigma <= 0 {
		return m.Clone()
	}
	kernel := GaussianKernel(sigma, 0)
	chans := [3]*FloatGray{}
	for c := 0; c < 3; c++ {
		f := NewFloatGray(m.W, m.H)
		for p, i := 0, c; p < len(f.Pix); p, i = p+1, i+3 {
			f.Pix[p] = float32(m.Pix[i])
		}
		chans[c] = f.ConvolveSeparable(kernel)
	}
	out := NewImage(m.W, m.H)
	for p := 0; p < m.W*m.H; p++ {
		out.Pix[p*3] = clamp8(float64(chans[0].Pix[p]))
		out.Pix[p*3+1] = clamp8(float64(chans[1].Pix[p]))
		out.Pix[p*3+2] = clamp8(float64(chans[2].Pix[p]))
	}
	return out
}

// Sobel computes horizontal and vertical derivative rasters using the
// standard 3x3 Sobel operators. Interior pixels index the three source
// rows directly (the border ring keeps the clamped path); the derivative
// expressions are identical in both paths, so the output matches the
// fully clamped loop bit for bit.
func (f *FloatGray) Sobel() (gx, gy *FloatGray) { return f.SobelIn(nil) }

// SobelIn is Sobel with both derivative rasters drawn from the arena.
func (f *FloatGray) SobelIn(a *arena.Arena) (gx, gy *FloatGray) {
	gx = NewFloatGrayIn(a, f.W, f.H)
	gy = NewFloatGrayIn(a, f.W, f.H)
	w, h := f.W, f.H
	for y := 0; y < h; y++ {
		if y > 0 && y < h-1 && w > 2 {
			up := f.Pix[(y-1)*w : y*w]
			mid := f.Pix[y*w : (y+1)*w]
			dn := f.Pix[(y+1)*w : (y+2)*w]
			gxRow := gx.Pix[y*w : (y+1)*w]
			gyRow := gy.Pix[y*w : (y+1)*w]
			for x := 1; x < w-1; x++ {
				p00, p10, p20 := up[x-1], up[x], up[x+1]
				p01, p21 := mid[x-1], mid[x+1]
				p02, p12, p22 := dn[x-1], dn[x], dn[x+1]
				gxRow[x] = (p20 + 2*p21 + p22) - (p00 + 2*p01 + p02)
				gyRow[x] = (p02 + 2*p12 + p22) - (p00 + 2*p10 + p20)
			}
			sobelClamped(f, gx, gy, 0, y)
			sobelClamped(f, gx, gy, w-1, y)
			continue
		}
		for x := 0; x < w; x++ {
			sobelClamped(f, gx, gy, x, y)
		}
	}
	return gx, gy
}

// sobelClamped evaluates both Sobel operators at one (possibly border)
// pixel with replicate clamping.
func sobelClamped(f, gx, gy *FloatGray, x, y int) {
	p00 := f.AtClamped(x-1, y-1)
	p10 := f.AtClamped(x, y-1)
	p20 := f.AtClamped(x+1, y-1)
	p01 := f.AtClamped(x-1, y)
	p21 := f.AtClamped(x+1, y)
	p02 := f.AtClamped(x-1, y+1)
	p12 := f.AtClamped(x, y+1)
	p22 := f.AtClamped(x+1, y+1)
	gx.Pix[y*f.W+x] = (p20 + 2*p21 + p22) - (p00 + 2*p01 + p02)
	gy.Pix[y*f.W+x] = (p02 + 2*p12 + p22) - (p00 + 2*p10 + p20)
}

// Subtract returns f - o element-wise; the rasters must be equally sized.
func (f *FloatGray) Subtract(o *FloatGray) *FloatGray { return f.SubtractIn(nil, o) }

// SubtractIn is Subtract with the result drawn from the arena.
func (f *FloatGray) SubtractIn(a *arena.Arena, o *FloatGray) *FloatGray {
	if f.W != o.W || f.H != o.H {
		panic("imaging: Subtract size mismatch")
	}
	out := NewFloatGrayIn(a, f.W, f.H)
	p, q, dst := f.Pix, o.Pix[:len(f.Pix)], out.Pix[:len(f.Pix)]
	for i := range p {
		dst[i] = p[i] - q[i]
	}
	return out
}
