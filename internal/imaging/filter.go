package imaging

import "math"

// GaussianKernel returns a normalised 1-D Gaussian kernel for the given
// sigma. The radius defaults to ceil(3*sigma) when radius <= 0.
func GaussianKernel(sigma float64, radius int) []float32 {
	if sigma <= 0 {
		return []float32{1}
	}
	if radius <= 0 {
		radius = int(math.Ceil(3 * sigma))
		if radius < 1 {
			radius = 1
		}
	}
	k := make([]float32, 2*radius+1)
	sum := 0.0
	inv := 1 / (2 * sigma * sigma)
	for i := -radius; i <= radius; i++ {
		v := math.Exp(-float64(i*i) * inv)
		k[i+radius] = float32(v)
		sum += v
	}
	for i := range k {
		k[i] = float32(float64(k[i]) / sum)
	}
	return k
}

// ConvolveSeparable applies the 1-D kernel horizontally then vertically
// with replicate border handling, returning a new raster.
func (f *FloatGray) ConvolveSeparable(kernel []float32) *FloatGray {
	return f.ConvolveH(kernel).ConvolveV(kernel)
}

// ConvolveH applies the 1-D kernel along rows with replicate borders.
func (f *FloatGray) ConvolveH(kernel []float32) *FloatGray {
	r := len(kernel) / 2
	out := NewFloatGray(f.W, f.H)
	for y := 0; y < f.H; y++ {
		row := f.Pix[y*f.W : (y+1)*f.W]
		for x := 0; x < f.W; x++ {
			var acc float32
			for k := -r; k <= r; k++ {
				sx := x + k
				if sx < 0 {
					sx = 0
				} else if sx >= f.W {
					sx = f.W - 1
				}
				acc += row[sx] * kernel[k+r]
			}
			out.Pix[y*f.W+x] = acc
		}
	}
	return out
}

// ConvolveV applies the 1-D kernel along columns with replicate borders.
func (f *FloatGray) ConvolveV(kernel []float32) *FloatGray {
	r := len(kernel) / 2
	out := NewFloatGray(f.W, f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			var acc float32
			for k := -r; k <= r; k++ {
				sy := y + k
				if sy < 0 {
					sy = 0
				} else if sy >= f.H {
					sy = f.H - 1
				}
				acc += f.Pix[sy*f.W+x] * kernel[k+r]
			}
			out.Pix[y*f.W+x] = acc
		}
	}
	return out
}

// GaussianBlur returns f blurred with an isotropic Gaussian of the given
// sigma. Sigma <= 0 returns a copy.
func (f *FloatGray) GaussianBlur(sigma float64) *FloatGray {
	if sigma <= 0 {
		return f.Clone()
	}
	return f.ConvolveSeparable(GaussianKernel(sigma, 0))
}

// GaussianBlur returns g blurred with an isotropic Gaussian.
func (g *Gray) GaussianBlur(sigma float64) *Gray {
	if sigma <= 0 {
		return g.Clone()
	}
	return g.ToFloat().GaussianBlur(sigma).ToGray()
}

// GaussianBlur blurs each RGB channel independently.
func (m *Image) GaussianBlur(sigma float64) *Image {
	if sigma <= 0 {
		return m.Clone()
	}
	kernel := GaussianKernel(sigma, 0)
	chans := [3]*FloatGray{}
	for c := 0; c < 3; c++ {
		f := NewFloatGray(m.W, m.H)
		for p, i := 0, c; p < len(f.Pix); p, i = p+1, i+3 {
			f.Pix[p] = float32(m.Pix[i])
		}
		chans[c] = f.ConvolveSeparable(kernel)
	}
	out := NewImage(m.W, m.H)
	for p := 0; p < m.W*m.H; p++ {
		out.Pix[p*3] = clamp8(float64(chans[0].Pix[p]))
		out.Pix[p*3+1] = clamp8(float64(chans[1].Pix[p]))
		out.Pix[p*3+2] = clamp8(float64(chans[2].Pix[p]))
	}
	return out
}

// Sobel computes horizontal and vertical derivative rasters using the
// standard 3x3 Sobel operators.
func (f *FloatGray) Sobel() (gx, gy *FloatGray) {
	gx = NewFloatGray(f.W, f.H)
	gy = NewFloatGray(f.W, f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			p00 := f.AtClamped(x-1, y-1)
			p10 := f.AtClamped(x, y-1)
			p20 := f.AtClamped(x+1, y-1)
			p01 := f.AtClamped(x-1, y)
			p21 := f.AtClamped(x+1, y)
			p02 := f.AtClamped(x-1, y+1)
			p12 := f.AtClamped(x, y+1)
			p22 := f.AtClamped(x+1, y+1)
			gx.Pix[y*f.W+x] = (p20 + 2*p21 + p22) - (p00 + 2*p01 + p02)
			gy.Pix[y*f.W+x] = (p02 + 2*p12 + p22) - (p00 + 2*p10 + p20)
		}
	}
	return gx, gy
}

// Subtract returns f - o element-wise; the rasters must be equally sized.
func (f *FloatGray) Subtract(o *FloatGray) *FloatGray {
	if f.W != o.W || f.H != o.H {
		panic("imaging: Subtract size mismatch")
	}
	out := NewFloatGray(f.W, f.H)
	for i := range f.Pix {
		out.Pix[i] = f.Pix[i] - o.Pix[i]
	}
	return out
}
