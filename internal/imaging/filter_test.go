package imaging

import (
	"math"
	"testing"

	"snmatch/internal/geom"
)

func TestGaussianKernelNormalised(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 1.6, 3} {
		k := GaussianKernel(sigma, 0)
		if len(k)%2 == 0 {
			t.Fatalf("kernel length even: %d", len(k))
		}
		sum := float32(0)
		for _, v := range k {
			sum += v
		}
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Errorf("sigma %v kernel sum = %v", sigma, sum)
		}
		// Symmetry.
		for i := 0; i < len(k)/2; i++ {
			if k[i] != k[len(k)-1-i] {
				t.Errorf("kernel asymmetric at %d", i)
			}
		}
		// Peak at centre.
		if k[len(k)/2] < k[0] {
			t.Error("kernel peak not at centre")
		}
	}
	if k := GaussianKernel(0, 0); len(k) != 1 || k[0] != 1 {
		t.Errorf("degenerate kernel = %v", k)
	}
}

func TestGaussianBlurPreservesUniform(t *testing.T) {
	f := NewFloatGray(9, 9)
	for i := range f.Pix {
		f.Pix[i] = 100
	}
	out := f.GaussianBlur(1.5)
	for i, v := range out.Pix {
		if math.Abs(float64(v)-100) > 1e-3 {
			t.Fatalf("uniform blur changed pixel %d: %v", i, v)
		}
	}
}

func TestGaussianBlurSpreadsImpulse(t *testing.T) {
	f := NewFloatGray(11, 11)
	f.Set(5, 5, 1000)
	out := f.GaussianBlur(1.0)
	if out.At(5, 5) >= 1000 {
		t.Error("centre not attenuated")
	}
	if out.At(5, 4) <= 0 || out.At(4, 5) <= 0 {
		t.Error("impulse did not spread")
	}
	// Energy conserved away from the border.
	var sum float32
	for _, v := range out.Pix {
		sum += v
	}
	if math.Abs(float64(sum)-1000) > 1 {
		t.Errorf("energy = %v, want ~1000", sum)
	}
	// Isotropy.
	if math.Abs(float64(out.At(5, 4)-out.At(4, 5))) > 1e-3 {
		t.Error("blur not isotropic")
	}
}

func TestImageGaussianBlurChannels(t *testing.T) {
	m := NewImageFilled(9, 9, RGB{200, 0, 50})
	out := m.GaussianBlur(2)
	if out.At(4, 4) != (RGB{200, 0, 50}) {
		t.Errorf("uniform RGB blur changed: %v", out.At(4, 4))
	}
	if got := m.GaussianBlur(0); got.At(1, 1) != m.At(1, 1) {
		t.Error("sigma 0 should copy")
	}
}

func TestSobelGradients(t *testing.T) {
	// Vertical step edge: left dark, right bright.
	f := NewFloatGray(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			f.Set(x, y, 100)
		}
	}
	gx, gy := f.Sobel()
	if gx.At(4, 4) <= 0 {
		t.Errorf("gx at edge = %v, want > 0", gx.At(4, 4))
	}
	if math.Abs(float64(gy.At(4, 4))) > 1e-3 {
		t.Errorf("gy at vertical edge = %v, want 0", gy.At(4, 4))
	}
	// Horizontal edge transposes the roles.
	f2 := NewFloatGray(8, 8)
	for y := 4; y < 8; y++ {
		for x := 0; x < 8; x++ {
			f2.Set(x, y, 100)
		}
	}
	gx2, gy2 := f2.Sobel()
	if gy2.At(4, 4) <= 0 {
		t.Errorf("gy at edge = %v", gy2.At(4, 4))
	}
	if math.Abs(float64(gx2.At(4, 4))) > 1e-3 {
		t.Errorf("gx at horizontal edge = %v", gx2.At(4, 4))
	}
}

func TestSubtract(t *testing.T) {
	a := NewFloatGray(3, 3)
	b := NewFloatGray(3, 3)
	a.Set(1, 1, 10)
	b.Set(1, 1, 4)
	d := a.Subtract(b)
	if d.At(1, 1) != 6 {
		t.Errorf("Subtract = %v", d.At(1, 1))
	}
	defer func() {
		if recover() == nil {
			t.Error("size mismatch did not panic")
		}
	}()
	a.Subtract(NewFloatGray(2, 2))
}

func TestIntegralBoxSum(t *testing.T) {
	g := NewGray(4, 4)
	for i := range g.Pix {
		g.Pix[i] = 1
	}
	it := NewIntegral(g)
	if got := it.BoxSum(0, 0, 4, 4); got != 16 {
		t.Errorf("full sum = %v", got)
	}
	if got := it.BoxSum(1, 1, 3, 3); got != 4 {
		t.Errorf("inner sum = %v", got)
	}
	// Clipping.
	if got := it.BoxSum(-5, -5, 10, 10); got != 16 {
		t.Errorf("clipped sum = %v", got)
	}
	if got := it.BoxSum(2, 2, 2, 2); got != 0 {
		t.Errorf("empty box sum = %v", got)
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	g := NewGray(13, 9)
	for i := range g.Pix {
		g.Pix[i] = uint8((i*37 + 11) % 251)
	}
	it := NewIntegral(g)
	brute := func(x0, y0, x1, y1 int) (s, sq float64) {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				v := float64(g.At(x, y))
				s += v
				sq += v * v
			}
		}
		return
	}
	cases := [][4]int{{0, 0, 13, 9}, {3, 2, 7, 8}, {0, 0, 1, 1}, {12, 8, 13, 9}, {5, 5, 5, 9}}
	for _, c := range cases {
		ws, wq := brute(c[0], c[1], c[2], c[3])
		if got := it.BoxSum(c[0], c[1], c[2], c[3]); got != ws {
			t.Errorf("BoxSum%v = %v, want %v", c, got, ws)
		}
		if got := it.BoxSqSum(c[0], c[1], c[2], c[3]); got != wq {
			t.Errorf("BoxSqSum%v = %v, want %v", c, got, wq)
		}
	}
	if got := it.BoxMean(0, 0, 13, 9); math.Abs(got-it.BoxSum(0, 0, 13, 9)/117) > 1e-9 {
		t.Errorf("BoxMean = %v", got)
	}
	if got := it.BoxMean(4, 4, 4, 4); got != 0 {
		t.Errorf("empty BoxMean = %v", got)
	}
}

func TestFillRectAndStroke(t *testing.T) {
	m := NewImage(10, 10)
	m.FillRect(geom.R(2, 2, 5, 5), White)
	if m.At(2, 2) != White || m.At(4, 4) != White {
		t.Error("FillRect interior missing")
	}
	if m.At(5, 5) == White {
		t.Error("FillRect overfilled (half-open violated)")
	}
	m2 := NewImage(10, 10)
	m2.StrokeRect(geom.R(1, 1, 9, 9), 2, White)
	if m2.At(1, 1) != White || m2.At(8, 8) != White {
		t.Error("StrokeRect corners missing")
	}
	if m2.At(5, 5) == White {
		t.Error("StrokeRect filled interior")
	}
}

func TestFillPolygonTriangle(t *testing.T) {
	m := NewImage(20, 20)
	tri := []geom.Point{geom.Pt(2, 2), geom.Pt(18, 2), geom.Pt(10, 18)}
	m.FillPolygon(tri, White)
	if m.At(10, 5) != White {
		t.Error("triangle interior not filled")
	}
	if m.At(2, 18) == White || m.At(18, 18) == White {
		t.Error("triangle exterior filled")
	}
	// Filled area should approximate the analytic area.
	count := 0
	for i := 0; i < len(m.Pix); i += 3 {
		if m.Pix[i] == 255 {
			count++
		}
	}
	want := 0.5 * 16 * 16
	if math.Abs(float64(count)-want) > want*0.15 {
		t.Errorf("filled pixels = %d, want ~%v", count, want)
	}
}

func TestFillPolygonDegenerate(t *testing.T) {
	m := NewImage(5, 5)
	m.FillPolygon([]geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)}, White) // no-op
	for i := 0; i < len(m.Pix); i += 3 {
		if m.Pix[i] != 0 {
			t.Fatal("degenerate polygon painted pixels")
		}
	}
}

func TestFillEllipseAndCircle(t *testing.T) {
	m := NewImage(21, 21)
	m.FillCircle(geom.Pt(10.5, 10.5), 8, White)
	if m.At(10, 10) != White {
		t.Error("circle centre not filled")
	}
	if m.At(0, 0) == White {
		t.Error("circle corner filled")
	}
	count := 0
	for i := 0; i < len(m.Pix); i += 3 {
		if m.Pix[i] == 255 {
			count++
		}
	}
	want := math.Pi * 64
	if math.Abs(float64(count)-want) > want*0.1 {
		t.Errorf("circle area = %d, want ~%v", count, want)
	}
}

func TestLineDraws(t *testing.T) {
	m := NewImage(20, 20)
	m.Line(geom.Pt(2, 10), geom.Pt(18, 10), 3, White)
	if m.At(10, 10) != White {
		t.Error("horizontal line centre missing")
	}
	if m.At(10, 5) == White {
		t.Error("line too thick")
	}
	// Zero-length line degenerates to a dot.
	m2 := NewImage(10, 10)
	m2.Line(geom.Pt(5, 5), geom.Pt(5, 5), 4, White)
	if m2.At(5, 5) != White {
		t.Error("dot missing")
	}
}

func TestStrokePolygonAndEllipse(t *testing.T) {
	m := NewImage(30, 30)
	square := []geom.Point{geom.Pt(5, 5), geom.Pt(25, 5), geom.Pt(25, 25), geom.Pt(5, 25)}
	m.StrokePolygon(square, 2, White)
	if m.At(15, 5) != White {
		t.Error("polygon stroke top edge missing")
	}
	if m.At(15, 15) == White {
		t.Error("polygon stroke filled interior")
	}
	m2 := NewImage(30, 30)
	m2.StrokeEllipse(geom.Pt(15, 15), 10, 6, 2, White)
	if m2.At(25, 15) != White && m2.At(24, 15) != White {
		t.Error("ellipse stroke right extreme missing")
	}
	if m2.At(15, 15) == White {
		t.Error("ellipse stroke filled centre")
	}
}

func TestDrawImageWithKey(t *testing.T) {
	dst := NewImageFilled(10, 10, RGB{50, 50, 50})
	src := NewImageFilled(4, 4, White)
	src.Set(0, 0, Black)
	dst.DrawImage(src, 3, 3, Black, true)
	if dst.At(3, 3) != (RGB{50, 50, 50}) {
		t.Error("key colour was drawn")
	}
	if dst.At(4, 4) != White {
		t.Error("content not drawn")
	}
	// Without key, everything is copied.
	dst2 := NewImageFilled(10, 10, RGB{50, 50, 50})
	dst2.DrawImage(src, 3, 3, Black, false)
	if dst2.At(3, 3) != Black {
		t.Error("keyless draw skipped pixel")
	}
	// Clipping draws the visible part only, without panicking.
	dst.DrawImage(src, 8, 8, Black, false)
	if dst.At(9, 9) != White {
		t.Error("clipped draw missing")
	}
}
