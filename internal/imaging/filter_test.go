package imaging

import (
	"math"
	"testing"

	"snmatch/internal/geom"
)

func TestGaussianKernelNormalised(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 1.6, 3} {
		k := GaussianKernel(sigma, 0)
		if len(k)%2 == 0 {
			t.Fatalf("kernel length even: %d", len(k))
		}
		sum := float32(0)
		for _, v := range k {
			sum += v
		}
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Errorf("sigma %v kernel sum = %v", sigma, sum)
		}
		// Symmetry.
		for i := 0; i < len(k)/2; i++ {
			if k[i] != k[len(k)-1-i] {
				t.Errorf("kernel asymmetric at %d", i)
			}
		}
		// Peak at centre.
		if k[len(k)/2] < k[0] {
			t.Error("kernel peak not at centre")
		}
	}
	if k := GaussianKernel(0, 0); len(k) != 1 || k[0] != 1 {
		t.Errorf("degenerate kernel = %v", k)
	}
}

func TestGaussianBlurPreservesUniform(t *testing.T) {
	f := NewFloatGray(9, 9)
	for i := range f.Pix {
		f.Pix[i] = 100
	}
	out := f.GaussianBlur(1.5)
	for i, v := range out.Pix {
		if math.Abs(float64(v)-100) > 1e-3 {
			t.Fatalf("uniform blur changed pixel %d: %v", i, v)
		}
	}
}

func TestGaussianBlurSpreadsImpulse(t *testing.T) {
	f := NewFloatGray(11, 11)
	f.Set(5, 5, 1000)
	out := f.GaussianBlur(1.0)
	if out.At(5, 5) >= 1000 {
		t.Error("centre not attenuated")
	}
	if out.At(5, 4) <= 0 || out.At(4, 5) <= 0 {
		t.Error("impulse did not spread")
	}
	// Energy conserved away from the border.
	var sum float32
	for _, v := range out.Pix {
		sum += v
	}
	if math.Abs(float64(sum)-1000) > 1 {
		t.Errorf("energy = %v, want ~1000", sum)
	}
	// Isotropy.
	if math.Abs(float64(out.At(5, 4)-out.At(4, 5))) > 1e-3 {
		t.Error("blur not isotropic")
	}
}

func TestImageGaussianBlurChannels(t *testing.T) {
	m := NewImageFilled(9, 9, RGB{200, 0, 50})
	out := m.GaussianBlur(2)
	if out.At(4, 4) != (RGB{200, 0, 50}) {
		t.Errorf("uniform RGB blur changed: %v", out.At(4, 4))
	}
	if got := m.GaussianBlur(0); got.At(1, 1) != m.At(1, 1) {
		t.Error("sigma 0 should copy")
	}
}

func TestSobelGradients(t *testing.T) {
	// Vertical step edge: left dark, right bright.
	f := NewFloatGray(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			f.Set(x, y, 100)
		}
	}
	gx, gy := f.Sobel()
	if gx.At(4, 4) <= 0 {
		t.Errorf("gx at edge = %v, want > 0", gx.At(4, 4))
	}
	if math.Abs(float64(gy.At(4, 4))) > 1e-3 {
		t.Errorf("gy at vertical edge = %v, want 0", gy.At(4, 4))
	}
	// Horizontal edge transposes the roles.
	f2 := NewFloatGray(8, 8)
	for y := 4; y < 8; y++ {
		for x := 0; x < 8; x++ {
			f2.Set(x, y, 100)
		}
	}
	gx2, gy2 := f2.Sobel()
	if gy2.At(4, 4) <= 0 {
		t.Errorf("gy at edge = %v", gy2.At(4, 4))
	}
	if math.Abs(float64(gx2.At(4, 4))) > 1e-3 {
		t.Errorf("gx at horizontal edge = %v", gx2.At(4, 4))
	}
}

func TestSubtract(t *testing.T) {
	a := NewFloatGray(3, 3)
	b := NewFloatGray(3, 3)
	a.Set(1, 1, 10)
	b.Set(1, 1, 4)
	d := a.Subtract(b)
	if d.At(1, 1) != 6 {
		t.Errorf("Subtract = %v", d.At(1, 1))
	}
	defer func() {
		if recover() == nil {
			t.Error("size mismatch did not panic")
		}
	}()
	a.Subtract(NewFloatGray(2, 2))
}

func TestIntegralBoxSum(t *testing.T) {
	g := NewGray(4, 4)
	for i := range g.Pix {
		g.Pix[i] = 1
	}
	it := NewIntegral(g)
	if got := it.BoxSum(0, 0, 4, 4); got != 16 {
		t.Errorf("full sum = %v", got)
	}
	if got := it.BoxSum(1, 1, 3, 3); got != 4 {
		t.Errorf("inner sum = %v", got)
	}
	// Clipping.
	if got := it.BoxSum(-5, -5, 10, 10); got != 16 {
		t.Errorf("clipped sum = %v", got)
	}
	if got := it.BoxSum(2, 2, 2, 2); got != 0 {
		t.Errorf("empty box sum = %v", got)
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	g := NewGray(13, 9)
	for i := range g.Pix {
		g.Pix[i] = uint8((i*37 + 11) % 251)
	}
	it := NewIntegral(g)
	brute := func(x0, y0, x1, y1 int) (s, sq float64) {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				v := float64(g.At(x, y))
				s += v
				sq += v * v
			}
		}
		return
	}
	cases := [][4]int{{0, 0, 13, 9}, {3, 2, 7, 8}, {0, 0, 1, 1}, {12, 8, 13, 9}, {5, 5, 5, 9}}
	for _, c := range cases {
		ws, wq := brute(c[0], c[1], c[2], c[3])
		if got := it.BoxSum(c[0], c[1], c[2], c[3]); got != ws {
			t.Errorf("BoxSum%v = %v, want %v", c, got, ws)
		}
		if got := it.BoxSqSum(c[0], c[1], c[2], c[3]); got != wq {
			t.Errorf("BoxSqSum%v = %v, want %v", c, got, wq)
		}
	}
	if got := it.BoxMean(0, 0, 13, 9); math.Abs(got-it.BoxSum(0, 0, 13, 9)/117) > 1e-9 {
		t.Errorf("BoxMean = %v", got)
	}
	if got := it.BoxMean(4, 4, 4, 4); got != 0 {
		t.Errorf("empty BoxMean = %v", got)
	}
}

func TestFillRectAndStroke(t *testing.T) {
	m := NewImage(10, 10)
	m.FillRect(geom.R(2, 2, 5, 5), White)
	if m.At(2, 2) != White || m.At(4, 4) != White {
		t.Error("FillRect interior missing")
	}
	if m.At(5, 5) == White {
		t.Error("FillRect overfilled (half-open violated)")
	}
	m2 := NewImage(10, 10)
	m2.StrokeRect(geom.R(1, 1, 9, 9), 2, White)
	if m2.At(1, 1) != White || m2.At(8, 8) != White {
		t.Error("StrokeRect corners missing")
	}
	if m2.At(5, 5) == White {
		t.Error("StrokeRect filled interior")
	}
}

func TestFillPolygonTriangle(t *testing.T) {
	m := NewImage(20, 20)
	tri := []geom.Point{geom.Pt(2, 2), geom.Pt(18, 2), geom.Pt(10, 18)}
	m.FillPolygon(tri, White)
	if m.At(10, 5) != White {
		t.Error("triangle interior not filled")
	}
	if m.At(2, 18) == White || m.At(18, 18) == White {
		t.Error("triangle exterior filled")
	}
	// Filled area should approximate the analytic area.
	count := 0
	for i := 0; i < len(m.Pix); i += 3 {
		if m.Pix[i] == 255 {
			count++
		}
	}
	want := 0.5 * 16 * 16
	if math.Abs(float64(count)-want) > want*0.15 {
		t.Errorf("filled pixels = %d, want ~%v", count, want)
	}
}

func TestFillPolygonDegenerate(t *testing.T) {
	m := NewImage(5, 5)
	m.FillPolygon([]geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)}, White) // no-op
	for i := 0; i < len(m.Pix); i += 3 {
		if m.Pix[i] != 0 {
			t.Fatal("degenerate polygon painted pixels")
		}
	}
}

func TestFillEllipseAndCircle(t *testing.T) {
	m := NewImage(21, 21)
	m.FillCircle(geom.Pt(10.5, 10.5), 8, White)
	if m.At(10, 10) != White {
		t.Error("circle centre not filled")
	}
	if m.At(0, 0) == White {
		t.Error("circle corner filled")
	}
	count := 0
	for i := 0; i < len(m.Pix); i += 3 {
		if m.Pix[i] == 255 {
			count++
		}
	}
	want := math.Pi * 64
	if math.Abs(float64(count)-want) > want*0.1 {
		t.Errorf("circle area = %d, want ~%v", count, want)
	}
}

func TestLineDraws(t *testing.T) {
	m := NewImage(20, 20)
	m.Line(geom.Pt(2, 10), geom.Pt(18, 10), 3, White)
	if m.At(10, 10) != White {
		t.Error("horizontal line centre missing")
	}
	if m.At(10, 5) == White {
		t.Error("line too thick")
	}
	// Zero-length line degenerates to a dot.
	m2 := NewImage(10, 10)
	m2.Line(geom.Pt(5, 5), geom.Pt(5, 5), 4, White)
	if m2.At(5, 5) != White {
		t.Error("dot missing")
	}
}

func TestStrokePolygonAndEllipse(t *testing.T) {
	m := NewImage(30, 30)
	square := []geom.Point{geom.Pt(5, 5), geom.Pt(25, 5), geom.Pt(25, 25), geom.Pt(5, 25)}
	m.StrokePolygon(square, 2, White)
	if m.At(15, 5) != White {
		t.Error("polygon stroke top edge missing")
	}
	if m.At(15, 15) == White {
		t.Error("polygon stroke filled interior")
	}
	m2 := NewImage(30, 30)
	m2.StrokeEllipse(geom.Pt(15, 15), 10, 6, 2, White)
	if m2.At(25, 15) != White && m2.At(24, 15) != White {
		t.Error("ellipse stroke right extreme missing")
	}
	if m2.At(15, 15) == White {
		t.Error("ellipse stroke filled centre")
	}
}

func TestDrawImageWithKey(t *testing.T) {
	dst := NewImageFilled(10, 10, RGB{50, 50, 50})
	src := NewImageFilled(4, 4, White)
	src.Set(0, 0, Black)
	dst.DrawImage(src, 3, 3, Black, true)
	if dst.At(3, 3) != (RGB{50, 50, 50}) {
		t.Error("key colour was drawn")
	}
	if dst.At(4, 4) != White {
		t.Error("content not drawn")
	}
	// Without key, everything is copied.
	dst2 := NewImageFilled(10, 10, RGB{50, 50, 50})
	dst2.DrawImage(src, 3, 3, Black, false)
	if dst2.At(3, 3) != Black {
		t.Error("keyless draw skipped pixel")
	}
	// Clipping draws the visible part only, without panicking.
	dst.DrawImage(src, 8, 8, Black, false)
	if dst.At(9, 9) != White {
		t.Error("clipped draw missing")
	}
}

// --- Bit-exactness of the optimised kernels against naive references ---

// naiveConvolveH/V are the original per-pixel clamped tap loops the
// optimised kernels must reproduce bit for bit.
func naiveConvolveH(f *FloatGray, kernel []float32) *FloatGray {
	r := len(kernel) / 2
	out := NewFloatGray(f.W, f.H)
	for y := 0; y < f.H; y++ {
		row := f.Pix[y*f.W : (y+1)*f.W]
		for x := 0; x < f.W; x++ {
			var acc float32
			for k := -r; k <= r; k++ {
				sx := x + k
				if sx < 0 {
					sx = 0
				} else if sx >= f.W {
					sx = f.W - 1
				}
				acc += row[sx] * kernel[k+r]
			}
			out.Pix[y*f.W+x] = acc
		}
	}
	return out
}

func naiveConvolveV(f *FloatGray, kernel []float32) *FloatGray {
	r := len(kernel) / 2
	out := NewFloatGray(f.W, f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			var acc float32
			for k := -r; k <= r; k++ {
				sy := y + k
				if sy < 0 {
					sy = 0
				} else if sy >= f.H {
					sy = f.H - 1
				}
				acc += f.Pix[sy*f.W+x] * kernel[k+r]
			}
			out.Pix[y*f.W+x] = acc
		}
	}
	return out
}

func naiveSobel(f *FloatGray) (gx, gy *FloatGray) {
	gx = NewFloatGray(f.W, f.H)
	gy = NewFloatGray(f.W, f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			p00 := f.AtClamped(x-1, y-1)
			p10 := f.AtClamped(x, y-1)
			p20 := f.AtClamped(x+1, y-1)
			p01 := f.AtClamped(x-1, y)
			p21 := f.AtClamped(x+1, y)
			p02 := f.AtClamped(x-1, y+1)
			p12 := f.AtClamped(x, y+1)
			p22 := f.AtClamped(x+1, y+1)
			gx.Pix[y*f.W+x] = (p20 + 2*p21 + p22) - (p00 + 2*p01 + p02)
			gy.Pix[y*f.W+x] = (p02 + 2*p12 + p22) - (p00 + 2*p10 + p20)
		}
	}
	return gx, gy
}

func randomRaster(w, h int, seed uint32) *FloatGray {
	f := NewFloatGray(w, h)
	s := seed
	for i := range f.Pix {
		s = s*1664525 + 1013904223
		f.Pix[i] = float32(s>>8) / float32(1<<24)
	}
	return f
}

func rastersBitEqual(t *testing.T, label string, want, got *FloatGray) {
	t.Helper()
	if want.W != got.W || want.H != got.H {
		t.Fatalf("%s: size %dx%d != %dx%d", label, got.W, got.H, want.W, want.H)
	}
	for i := range want.Pix {
		if math.Float32bits(want.Pix[i]) != math.Float32bits(got.Pix[i]) {
			t.Fatalf("%s: pixel %d = %v, want %v", label, i, got.Pix[i], want.Pix[i])
		}
	}
}

func TestConvolveBitIdenticalToNaive(t *testing.T) {
	sizes := [][2]int{{1, 1}, {3, 3}, {4, 6}, {7, 5}, {16, 16}, {33, 9}, {64, 64}}
	for _, sz := range sizes {
		f := randomRaster(sz[0], sz[1], uint32(77+sz[0]*31+sz[1]))
		for _, radius := range []int{0, 1, 2, 5, 9, 20} {
			kernel := GaussianKernel(float64(radius)/3+0.2, radius)
			label := "conv " + itoa(sz[0]) + "x" + itoa(sz[1]) + " r" + itoa(radius)
			rastersBitEqual(t, label+" H", naiveConvolveH(f, kernel), f.ConvolveH(kernel))
			rastersBitEqual(t, label+" V", naiveConvolveV(f, kernel), f.ConvolveV(kernel))
		}
	}
}

func TestConvolveSeparableFusionBitIdentical(t *testing.T) {
	// The fused ring-buffer pass must equal the unfused H-then-V
	// composition exactly.
	for _, sz := range [][2]int{{1, 1}, {2, 3}, {5, 5}, {9, 16}, {64, 48}} {
		f := randomRaster(sz[0], sz[1], uint32(101+sz[0]*7+sz[1]))
		for _, radius := range []int{0, 1, 3, 7, 15} {
			kernel := GaussianKernel(float64(radius)/3+0.3, radius)
			want := f.ConvolveH(kernel).ConvolveV(kernel)
			got := f.ConvolveSeparable(kernel)
			label := "sep " + itoa(sz[0]) + "x" + itoa(sz[1]) + " r" + itoa(radius)
			rastersBitEqual(t, label, want, got)
		}
		// Even-length kernels shift the window asymmetrically; the
		// fused ring sizing must not clobber the window's first row.
		for _, kernel := range [][]float32{
			{0.25, 0.25, 0.25, 0.25},
			{0.5, 0.5},
			{0.1, 0.2, 0.3, 0.2, 0.1, 0.1},
		} {
			want := f.ConvolveH(kernel).ConvolveV(kernel)
			got := f.ConvolveSeparable(kernel)
			label := "sep even-k" + itoa(len(kernel)) + " " + itoa(sz[0]) + "x" + itoa(sz[1])
			rastersBitEqual(t, label, want, got)
		}
	}
}

func TestSobelBitIdenticalToNaive(t *testing.T) {
	for _, sz := range [][2]int{{1, 1}, {2, 2}, {3, 3}, {5, 4}, {17, 23}, {64, 64}} {
		f := randomRaster(sz[0], sz[1], uint32(5+sz[0]+sz[1]*13))
		wantX, wantY := naiveSobel(f)
		gotX, gotY := f.Sobel()
		label := "sobel " + itoa(sz[0]) + "x" + itoa(sz[1])
		rastersBitEqual(t, label+" gx", wantX, gotX)
		rastersBitEqual(t, label+" gy", wantY, gotY)
	}
}

func TestBoxSumClampMatchesReference(t *testing.T) {
	g := NewGray(13, 9)
	s := uint32(3)
	for i := range g.Pix {
		s = s*1664525 + 1013904223
		g.Pix[i] = byte(s >> 24)
	}
	it := NewIntegral(g)
	ref := func(x0, y0, x1, y1 int) float64 {
		clamp := func(v, hi int) int {
			if v < 0 {
				return 0
			}
			if v > hi {
				return hi
			}
			return v
		}
		x0, x1 = clamp(x0, it.W), clamp(x1, it.W)
		y0, y1 = clamp(y0, it.H), clamp(y1, it.H)
		if x1 < x0 {
			x1 = x0
		}
		if y1 < y0 {
			y1 = y0
		}
		sum := it.Sum
		stride := it.W + 1
		return sum[y1*stride+x1] - sum[y0*stride+x1] - sum[y1*stride+x0] + sum[y0*stride+x0]
	}
	coords := []int{-20, -5, -1, 0, 1, 4, 8, 9, 12, 13, 14, 40}
	for _, x0 := range coords {
		for _, y0 := range coords {
			for _, x1 := range coords {
				for _, y1 := range coords {
					if got, want := it.BoxSum(x0, y0, x1, y1), ref(x0, y0, x1, y1); got != want {
						t.Fatalf("BoxSum(%d,%d,%d,%d) = %v, want %v", x0, y0, x1, y1, got, want)
					}
				}
			}
		}
	}
}

func TestNewIntegralSumMatchesNewIntegral(t *testing.T) {
	g := NewGray(21, 17)
	s := uint32(9)
	for i := range g.Pix {
		s = s*1664525 + 1013904223
		g.Pix[i] = byte(s >> 24)
	}
	full, sumOnly := NewIntegral(g), NewIntegralSum(g)
	for i := range full.Sum {
		if full.Sum[i] != sumOnly.Sum[i] {
			t.Fatalf("Sum[%d] = %v, want %v", i, sumOnly.Sum[i], full.Sum[i])
		}
	}
	if sumOnly.SqSum != nil {
		t.Error("NewIntegralSum built SqSum")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
