package imaging

import "snmatch/internal/arena"

// Integral is a summed-area table. Sum holds the inclusive prefix sums of
// pixel values and SqSum the prefix sums of squared values, both with an
// extra zero row and column so lookups need no bounds branches.
type Integral struct {
	W, H  int // dimensions of the source image
	Sum   []float64
	SqSum []float64
}

// NewIntegral builds the summed-area table of g.
func NewIntegral(g *Gray) *Integral {
	it := NewIntegralSum(g)
	it.SqSum = make([]float64, (g.W+1)*(g.H+1))
	stride := g.W + 1
	for y := 1; y <= g.H; y++ {
		var rowSq float64
		for x := 1; x <= g.W; x++ {
			v := float64(g.Pix[(y-1)*g.W+x-1])
			rowSq += v * v
			it.SqSum[y*stride+x] = it.SqSum[(y-1)*stride+x] + rowSq
		}
	}
	return it
}

// NewIntegralSum builds only the plain prefix-sum table — enough for
// BoxSum/BoxMean consumers (the SURF sweep), at half the build cost.
// BoxSqSum must not be called on the result.
func NewIntegralSum(g *Gray) *Integral { return NewIntegralSumIn(nil, g) }

// NewIntegralSumIn is NewIntegralSum with the header and table drawn
// from the arena.
func NewIntegralSumIn(a *arena.Arena, g *Gray) *Integral {
	it := arena.NewOf[Integral](a)
	it.W, it.H = g.W, g.H
	it.Sum = arena.Slice[float64](a, (g.W+1)*(g.H+1))
	stride := g.W + 1
	for y := 1; y <= g.H; y++ {
		var rowSum float64
		for x := 1; x <= g.W; x++ {
			v := float64(g.Pix[(y-1)*g.W+x-1])
			rowSum += v
			it.Sum[y*stride+x] = it.Sum[(y-1)*stride+x] + rowSum
		}
	}
	return it
}

// clampBox clips the half-open box [x0,x1) x [y0,y1) to the source bounds.
func (it *Integral) clampBox(x0, y0, x1, y1 int) (int, int, int, int) {
	if x0 < 0 {
		x0 = 0
	} else if x0 > it.W {
		x0 = it.W
	}
	if x1 < 0 {
		x1 = 0
	} else if x1 > it.W {
		x1 = it.W
	}
	if y0 < 0 {
		y0 = 0
	} else if y0 > it.H {
		y0 = it.H
	}
	if y1 < 0 {
		y1 = 0
	} else if y1 > it.H {
		y1 = it.H
	}
	if x1 < x0 {
		x1 = x0
	}
	if y1 < y0 {
		y1 = y0
	}
	return x0, y0, x1, y1
}

// BoxSum returns the sum of pixel values in the half-open rectangle
// [x0,x1) x [y0,y1), clipped to the image. The clamps are inlined —
// for interior boxes (the common case in dense SURF sweeps) they are
// all well-predicted not-taken branches.
func (it *Integral) BoxSum(x0, y0, x1, y1 int) float64 {
	if x0 < 0 {
		x0 = 0
	} else if x0 > it.W {
		x0 = it.W
	}
	if x1 < x0 {
		x1 = x0
	} else if x1 > it.W {
		x1 = it.W
	}
	if y0 < 0 {
		y0 = 0
	} else if y0 > it.H {
		y0 = it.H
	}
	if y1 < y0 {
		y1 = y0
	} else if y1 > it.H {
		y1 = it.H
	}
	s := it.Sum
	stride := it.W + 1
	return s[y1*stride+x1] - s[y0*stride+x1] - s[y1*stride+x0] + s[y0*stride+x0]
}

// BoxSqSum returns the sum of squared pixel values in the half-open
// rectangle [x0,x1) x [y0,y1), clipped to the image.
func (it *Integral) BoxSqSum(x0, y0, x1, y1 int) float64 {
	if x0 < 0 || y0 < 0 || x1 > it.W || y1 > it.H || x1 < x0 || y1 < y0 {
		x0, y0, x1, y1 = it.clampBox(x0, y0, x1, y1)
	}
	s := it.SqSum
	stride := it.W + 1
	return s[y1*stride+x1] - s[y0*stride+x1] - s[y1*stride+x0] + s[y0*stride+x0]
}

// BoxMean returns the mean pixel value over the clipped rectangle, or 0
// for an empty intersection.
func (it *Integral) BoxMean(x0, y0, x1, y1 int) float64 {
	cx0, cy0, cx1, cy1 := it.clampBox(x0, y0, x1, y1)
	n := (cx1 - cx0) * (cy1 - cy0)
	if n == 0 {
		return 0
	}
	return it.BoxSum(x0, y0, x1, y1) / float64(n)
}
