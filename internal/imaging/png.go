package imaging

import (
	"fmt"
	"image/png"
	"os"
)

// SavePNG writes m to path as a PNG file.
func (m *Image) SavePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imaging: save png: %w", err)
	}
	defer f.Close()
	if err := png.Encode(f, m.ToStdImage()); err != nil {
		return fmt.Errorf("imaging: encode png: %w", err)
	}
	return f.Close()
}

// LoadPNG reads a PNG file into an Image.
func LoadPNG(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("imaging: load png: %w", err)
	}
	defer f.Close()
	img, err := png.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("imaging: decode png: %w", err)
	}
	return FromStdImage(img), nil
}
