// Package imaging provides the raster substrate for the recognition
// pipelines: dense 8-bit RGB and grayscale images, geometric transforms,
// separable filtering, integral images and simple vector drawing. It is a
// from-scratch, stdlib-only replacement for the small subset of OpenCV that
// the paper's pipelines rely on.
package imaging

import (
	"fmt"
	"image"
	"image/color"

	"snmatch/internal/arena"
	"snmatch/internal/geom"
)

// RGB is a packed 8-bit colour.
type RGB struct {
	R, G, B uint8
}

// C constructs an RGB colour.
func C(r, g, b uint8) RGB { return RGB{r, g, b} }

// Luma returns the BT.601 luma of c as a value in [0, 255].
func (c RGB) Luma() uint8 {
	// Fixed point: (299 R + 587 G + 114 B) / 1000, rounded.
	return uint8((299*uint32(c.R) + 587*uint32(c.G) + 114*uint32(c.B) + 500) / 1000)
}

// Scale multiplies each channel by k, clamping to [0, 255].
func (c RGB) Scale(k float64) RGB {
	return RGB{clamp8(float64(c.R) * k), clamp8(float64(c.G) * k), clamp8(float64(c.B) * k)}
}

// Mix linearly interpolates between c and d: t=0 gives c, t=1 gives d.
func (c RGB) Mix(d RGB, t float64) RGB {
	return RGB{
		clamp8(float64(c.R) + (float64(d.R)-float64(c.R))*t),
		clamp8(float64(c.G) + (float64(d.G)-float64(c.G))*t),
		clamp8(float64(c.B) + (float64(d.B)-float64(c.B))*t),
	}
}

func clamp8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Common colours used by tests and the synthetic renderer.
var (
	Black = RGB{0, 0, 0}
	White = RGB{255, 255, 255}
)

// Image is an interleaved 8-bit RGB raster.
type Image struct {
	W, H int
	Pix  []uint8 // len == 3*W*H, row-major, R G B per pixel
}

// NewImage returns a black W x H image. It panics on non-positive sizes.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// NewImageFilled returns a W x H image filled with c.
func NewImageFilled(w, h int, c RGB) *Image {
	img := NewImage(w, h)
	img.Fill(c)
	return img
}

// NewImageIn is NewImage with the header and pixel buffer drawn from
// the arena (nil falls back to the heap). Arena-backed images are zeroed
// exactly like heap ones, and are reclaimed by the arena's Reset.
func NewImageIn(a *arena.Arena, w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid image size %dx%d", w, h))
	}
	m := arena.NewOf[Image](a)
	m.W, m.H = w, h
	m.Pix = arena.Slice[uint8](a, 3*w*h)
	return m
}

// Fill sets every pixel of m to c.
func (m *Image) Fill(c RGB) {
	for i := 0; i < len(m.Pix); i += 3 {
		m.Pix[i], m.Pix[i+1], m.Pix[i+2] = c.R, c.G, c.B
	}
}

// Bounds returns the image rectangle.
func (m *Image) Bounds() geom.Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: m.W, MaxY: m.H} }

// In reports whether (x, y) is a valid pixel coordinate.
func (m *Image) In(x, y int) bool { return x >= 0 && x < m.W && y >= 0 && y < m.H }

// At returns the pixel at (x, y). It panics when out of bounds.
func (m *Image) At(x, y int) RGB {
	i := (y*m.W + x) * 3
	return RGB{m.Pix[i], m.Pix[i+1], m.Pix[i+2]}
}

// AtClamped returns the pixel at (x, y) with coordinates clamped to the
// image border (replicate padding).
func (m *Image) AtClamped(x, y int) RGB {
	if x < 0 {
		x = 0
	} else if x >= m.W {
		x = m.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= m.H {
		y = m.H - 1
	}
	return m.At(x, y)
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (m *Image) Set(x, y int, c RGB) {
	if !m.In(x, y) {
		return
	}
	i := (y*m.W + x) * 3
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = c.R, c.G, c.B
}

// Clone returns a deep copy of m.
func (m *Image) Clone() *Image { return m.CloneIn(nil) }

// CloneIn is Clone with the copy drawn from the arena (nil falls back
// to the heap).
func (m *Image) CloneIn(a *arena.Arena) *Image {
	out := NewImageIn(a, m.W, m.H)
	copy(out.Pix, m.Pix)
	return out
}

// Crop returns a copy of the sub-image covered by r (clamped to bounds).
// It returns nil when the clamped rectangle is empty.
func (m *Image) Crop(r geom.Rect) *Image { return m.CropIn(nil, r) }

// CropIn is Crop with the sub-image drawn from the arena (nil falls
// back to the heap).
func (m *Image) CropIn(a *arena.Arena, r geom.Rect) *Image {
	r = r.ClampTo(m.W, m.H)
	if r.Empty() {
		return nil
	}
	out := NewImageIn(a, r.W(), r.H())
	for y := 0; y < out.H; y++ {
		src := ((r.MinY+y)*m.W + r.MinX) * 3
		dst := y * out.W * 3
		copy(out.Pix[dst:dst+out.W*3], m.Pix[src:src+out.W*3])
	}
	return out
}

// ToGray converts m to an 8-bit luma image.
func (m *Image) ToGray() *Gray { return m.ToGrayIn(nil) }

// ToGrayIn is ToGray with the result drawn from the arena (nil falls
// back to the heap).
func (m *Image) ToGrayIn(a *arena.Arena) *Gray {
	g := NewGrayIn(a, m.W, m.H)
	for p, i := 0, 0; p < len(g.Pix); p, i = p+1, i+3 {
		g.Pix[p] = RGB{m.Pix[i], m.Pix[i+1], m.Pix[i+2]}.Luma()
	}
	return g
}

// Gray is an 8-bit single channel raster.
type Gray struct {
	W, H int
	Pix  []uint8 // len == W*H, row-major
}

// NewGray returns a zeroed W x H grayscale image.
func NewGray(w, h int) *Gray { return NewGrayIn(nil, w, h) }

// NewGrayIn is NewGray with the header and pixel buffer drawn from the
// arena (nil falls back to the heap). Arena-backed rasters are zeroed
// exactly like heap ones, and are reclaimed by the arena's Reset.
func NewGrayIn(a *arena.Arena, w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid image size %dx%d", w, h))
	}
	g := arena.NewOf[Gray](a)
	g.W, g.H = w, h
	g.Pix = arena.Slice[uint8](a, w*h)
	return g
}

// In reports whether (x, y) is a valid pixel coordinate.
func (g *Gray) In(x, y int) bool { return x >= 0 && x < g.W && y >= 0 && y < g.H }

// At returns the pixel at (x, y). It panics when out of bounds.
func (g *Gray) At(x, y int) uint8 { return g.Pix[y*g.W+x] }

// AtClamped returns the pixel at (x, y) with replicate border padding.
func (g *Gray) AtClamped(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (g *Gray) Set(x, y int, v uint8) {
	if !g.In(x, y) {
		return
	}
	g.Pix[y*g.W+x] = v
}

// Clone returns a deep copy of g.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Crop returns a copy of the sub-image covered by r (clamped to bounds),
// or nil when the clamped rectangle is empty.
func (g *Gray) Crop(r geom.Rect) *Gray { return g.CropIn(nil, r) }

// CropIn is Crop with the sub-image drawn from the arena (nil falls
// back to the heap).
func (g *Gray) CropIn(a *arena.Arena, r geom.Rect) *Gray {
	r = r.ClampTo(g.W, g.H)
	if r.Empty() {
		return nil
	}
	out := NewGrayIn(a, r.W(), r.H())
	for y := 0; y < out.H; y++ {
		src := (r.MinY+y)*g.W + r.MinX
		copy(out.Pix[y*out.W:(y+1)*out.W], g.Pix[src:src+out.W])
	}
	return out
}

// ToImage expands g to an RGB image with equal channels.
func (g *Gray) ToImage() *Image {
	m := NewImage(g.W, g.H)
	for p, i := 0, 0; p < len(g.Pix); p, i = p+1, i+3 {
		v := g.Pix[p]
		m.Pix[i], m.Pix[i+1], m.Pix[i+2] = v, v, v
	}
	return m
}

// ToFloat converts g to a float32 raster in [0, 255].
func (g *Gray) ToFloat() *FloatGray { return g.ToFloatIn(nil) }

// ToFloatIn is ToFloat with the result drawn from the arena.
func (g *Gray) ToFloatIn(a *arena.Arena) *FloatGray {
	f := NewFloatGrayIn(a, g.W, g.H)
	for i, v := range g.Pix {
		f.Pix[i] = float32(v)
	}
	return f
}

// FloatGray is a float32 single channel raster used by the scale-space
// feature detectors where 8-bit precision is insufficient.
type FloatGray struct {
	W, H int
	Pix  []float32
}

// NewFloatGray returns a zeroed W x H float raster.
func NewFloatGray(w, h int) *FloatGray { return NewFloatGrayIn(nil, w, h) }

// NewFloatGrayIn is NewFloatGray with the header and pixel buffer drawn
// from the arena (nil falls back to the heap).
func NewFloatGrayIn(a *arena.Arena, w, h int) *FloatGray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid image size %dx%d", w, h))
	}
	f := arena.NewOf[FloatGray](a)
	f.W, f.H = w, h
	f.Pix = arena.Slice[float32](a, w*h)
	return f
}

// At returns the value at (x, y). It panics when out of bounds.
func (f *FloatGray) At(x, y int) float32 { return f.Pix[y*f.W+x] }

// AtClamped returns the value at (x, y) with replicate border padding.
func (f *FloatGray) AtClamped(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= f.H {
		y = f.H - 1
	}
	return f.Pix[y*f.W+x]
}

// Set writes the value at (x, y); out-of-bounds writes are ignored.
func (f *FloatGray) Set(x, y int, v float32) {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return
	}
	f.Pix[y*f.W+x] = v
}

// Clone returns a deep copy of f.
func (f *FloatGray) Clone() *FloatGray {
	out := NewFloatGray(f.W, f.H)
	copy(out.Pix, f.Pix)
	return out
}

// ToGray clamps and rounds f back to an 8-bit image.
func (f *FloatGray) ToGray() *Gray { return f.ToGrayIn(nil) }

// ToGrayIn is ToGray with the result drawn from the arena.
func (f *FloatGray) ToGrayIn(a *arena.Arena) *Gray {
	g := NewGrayIn(a, f.W, f.H)
	for i, v := range f.Pix {
		g.Pix[i] = clamp8(float64(v))
	}
	return g
}

// FromStdImage converts any image.Image into an Image.
func FromStdImage(src image.Image) *Image {
	b := src.Bounds()
	out := NewImage(b.Dx(), b.Dy())
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			r, g, bl, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Set(x, y, RGB{uint8(r >> 8), uint8(g >> 8), uint8(bl >> 8)})
		}
	}
	return out
}

// ToStdImage converts m into an *image.RGBA for use with the standard
// library encoders.
func (m *Image) ToStdImage() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, m.W, m.H))
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			c := m.At(x, y)
			out.SetRGBA(x, y, color.RGBA{c.R, c.G, c.B, 255})
		}
	}
	return out
}

// MeanRGB returns the per-channel mean of the image.
func (m *Image) MeanRGB() (r, g, b float64) {
	n := float64(m.W * m.H)
	var sr, sg, sb uint64
	for i := 0; i < len(m.Pix); i += 3 {
		sr += uint64(m.Pix[i])
		sg += uint64(m.Pix[i+1])
		sb += uint64(m.Pix[i+2])
	}
	return float64(sr) / n, float64(sg) / n, float64(sb) / n
}
