package imaging

import (
	"fmt"

	"snmatch/internal/arena"
)

// ResizeNearest scales m to w x h with nearest-neighbour sampling.
func (m *Image) ResizeNearest(w, h int) *Image {
	checkSize(w, h)
	out := NewImage(w, h)
	xr := float64(m.W) / float64(w)
	yr := float64(m.H) / float64(h)
	for y := 0; y < h; y++ {
		sy := int((float64(y) + 0.5) * yr)
		if sy >= m.H {
			sy = m.H - 1
		}
		for x := 0; x < w; x++ {
			sx := int((float64(x) + 0.5) * xr)
			if sx >= m.W {
				sx = m.W - 1
			}
			out.Set(x, y, m.At(sx, sy))
		}
	}
	return out
}

// ResizeBilinear scales m to w x h with bilinear interpolation using
// pixel-centre alignment.
func (m *Image) ResizeBilinear(w, h int) *Image {
	checkSize(w, h)
	out := NewImage(w, h)
	xr := float64(m.W) / float64(w)
	yr := float64(m.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*yr - 0.5
		y0 := floorInt(fy)
		wy := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*xr - 0.5
			x0 := floorInt(fx)
			wx := fx - float64(x0)
			c00 := m.AtClamped(x0, y0)
			c10 := m.AtClamped(x0+1, y0)
			c01 := m.AtClamped(x0, y0+1)
			c11 := m.AtClamped(x0+1, y0+1)
			top := c00.Mix(c10, wx)
			bot := c01.Mix(c11, wx)
			out.Set(x, y, top.Mix(bot, wy))
		}
	}
	return out
}

// ResizeNearest scales g to w x h with nearest-neighbour sampling.
func (g *Gray) ResizeNearest(w, h int) *Gray {
	checkSize(w, h)
	out := NewGray(w, h)
	xr := float64(g.W) / float64(w)
	yr := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		sy := int((float64(y) + 0.5) * yr)
		if sy >= g.H {
			sy = g.H - 1
		}
		for x := 0; x < w; x++ {
			sx := int((float64(x) + 0.5) * xr)
			if sx >= g.W {
				sx = g.W - 1
			}
			out.Set(x, y, g.At(sx, sy))
		}
	}
	return out
}

// ResizeBilinear scales g to w x h with bilinear interpolation.
func (g *Gray) ResizeBilinear(w, h int) *Gray { return g.ResizeBilinearIn(nil, w, h) }

// ResizeBilinearIn is ResizeBilinear with the result drawn from the
// arena.
func (g *Gray) ResizeBilinearIn(a *arena.Arena, w, h int) *Gray {
	checkSize(w, h)
	out := NewGrayIn(a, w, h)
	xr := float64(g.W) / float64(w)
	yr := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*yr - 0.5
		y0 := floorInt(fy)
		wy := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*xr - 0.5
			x0 := floorInt(fx)
			wx := fx - float64(x0)
			v00 := float64(g.AtClamped(x0, y0))
			v10 := float64(g.AtClamped(x0+1, y0))
			v01 := float64(g.AtClamped(x0, y0+1))
			v11 := float64(g.AtClamped(x0+1, y0+1))
			top := v00 + (v10-v00)*wx
			bot := v01 + (v11-v01)*wx
			out.Set(x, y, clamp8(top+(bot-top)*wy))
		}
	}
	return out
}

// ResizeBilinear scales f to w x h with bilinear interpolation.
func (f *FloatGray) ResizeBilinear(w, h int) *FloatGray { return f.ResizeBilinearIn(nil, w, h) }

// ResizeBilinearIn is ResizeBilinear with the result drawn from the
// arena.
func (f *FloatGray) ResizeBilinearIn(a *arena.Arena, w, h int) *FloatGray {
	checkSize(w, h)
	out := NewFloatGrayIn(a, w, h)
	xr := float64(f.W) / float64(w)
	yr := float64(f.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*yr - 0.5
		y0 := floorInt(fy)
		wy := float32(fy - float64(y0))
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*xr - 0.5
			x0 := floorInt(fx)
			wx := float32(fx - float64(x0))
			v00 := f.AtClamped(x0, y0)
			v10 := f.AtClamped(x0+1, y0)
			v01 := f.AtClamped(x0, y0+1)
			v11 := f.AtClamped(x0+1, y0+1)
			top := v00 + (v10-v00)*wx
			bot := v01 + (v11-v01)*wx
			out.Set(x, y, top+(bot-top)*wy)
		}
	}
	return out
}

// Downsample2 halves f in each dimension by dropping odd rows/columns, as
// used between SIFT octaves. Images of odd size round down (minimum 1).
func (f *FloatGray) Downsample2() *FloatGray { return f.Downsample2In(nil) }

// Downsample2In is Downsample2 with the result drawn from the arena.
func (f *FloatGray) Downsample2In(a *arena.Arena) *FloatGray {
	w, h := f.W/2, f.H/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := NewFloatGrayIn(a, w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Set(x, y, f.AtClamped(2*x, 2*y))
		}
	}
	return out
}

func checkSize(w, h int) {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imaging: invalid resize target %dx%d", w, h))
	}
}

func floorInt(v float64) int {
	i := int(v)
	if v < 0 && float64(i) != v {
		i--
	}
	return i
}
