// Command bench runs the repository's `go test -bench` tables, parses
// ns/op, -benchmem and custom metrics (accuracy etc.), and writes a
// machine-readable BENCH_<n>.json snapshot — the perf trajectory record
// the ROADMAP asks every optimisation PR to extend.
//
// Usage:
//
//	go run ./cmd/bench [-bench REGEX] [-benchtime 3x] [-count 3] [-out BENCH_2.json] [-note "..."]
//
// Multiple -count repetitions are averaged per benchmark.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's aggregated numbers.
type Result struct {
	Name       string             `json:"name"`
	Runs       int                `json:"runs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // ns/op, B/op, allocs/op, acc, ...
}

// Report is the BENCH_<n>.json document.
type Report struct {
	ID         string   `json:"id"`
	Note       string   `json:"note,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Bench      string   `json:"bench_regex"`
	BenchTime  string   `json:"benchtime"`
	Count      int      `json:"count"`
	DurationMS int64    `json:"duration_ms"`
	Results    []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	benchRe := flag.String("bench", "BenchmarkRunParallelDescriptor|BenchmarkGoodMatchCount|BenchmarkRunParallel$|BenchmarkServeThroughput|BenchmarkServeBatcher|BenchmarkSnapshot",
		"benchmark regex passed to go test -bench")
	benchTime := flag.String("benchtime", "3x", "go test -benchtime value")
	count := flag.Int("count", 3, "go test -count repetitions (averaged)")
	outPath := flag.String("out", "BENCH_3.json", "output JSON path")
	pkg := flag.String("pkg", ".", "package to benchmark")
	note := flag.String("note", "", "free-form note recorded in the report")
	flag.Parse()

	args := []string{
		"test", "-run", "^$",
		"-bench", *benchRe,
		"-benchmem",
		"-benchtime", *benchTime,
		"-count", strconv.Itoa(*count),
		*pkg,
	}
	log.Printf("running go %s", strings.Join(args, " "))
	start := time.Now()
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		log.Fatalf("go test -bench failed: %v", err)
	}
	elapsed := time.Since(start)

	results := parseBenchOutput(bytes.NewReader(out))
	if len(results) == 0 {
		log.Fatal("no benchmark lines parsed; is the regex right?")
	}

	id := strings.TrimSuffix(strings.TrimSuffix(*outPath, ".json"), ".JSON")
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		id = id[i+1:]
	}
	report := Report{
		ID:         id,
		Note:       *note,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      *benchRe,
		BenchTime:  *benchTime,
		Count:      *count,
		DurationMS: elapsed.Milliseconds(),
		Results:    results,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-60s %12.0f ns/op", r.Name, r.Metrics["ns/op"])
		if acc, ok := r.Metrics["acc"]; ok {
			fmt.Printf("  acc=%.4f", acc)
		}
		if al, ok := r.Metrics["allocs/op"]; ok {
			fmt.Printf("  allocs/op=%.0f", al)
		}
		fmt.Println()
	}
	fmt.Printf("wrote %s (%d benchmarks, %s)\n", *outPath, len(results), elapsed.Round(time.Second))
}

// parseBenchOutput folds standard `go test -bench` lines — name,
// iteration count, then (value, unit) pairs — into per-name means.
func parseBenchOutput(r *bytes.Reader) []Result {
	type agg struct {
		runs  int
		iters int64
		sums  map[string]float64
	}
	byName := map[string]*agg{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// Strip the -N GOMAXPROCS suffix go test appends to the name.
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		a := byName[name]
		if a == nil {
			a = &agg{sums: map[string]float64{}}
			byName[name] = a
			order = append(order, name)
		}
		a.runs++
		a.iters = iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			a.sums[fields[i+1]] += v
		}
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		a := byName[name]
		metrics := make(map[string]float64, len(a.sums))
		for unit, sum := range a.sums {
			metrics[unit] = sum / float64(a.runs)
		}
		out = append(out, Result{Name: name, Runs: a.runs, Iterations: a.iters, Metrics: metrics})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
