// Command bench runs the repository's `go test -bench` tables, parses
// ns/op, -benchmem and custom metrics (accuracy etc.), and writes a
// machine-readable BENCH_<n>.json snapshot — the perf trajectory record
// the ROADMAP asks every optimisation PR to extend.
//
// Usage:
//
//	go run ./cmd/bench [-bench REGEX] [-benchtime 3x] [-count 3] [-out BENCH_4.json] [-note "..."] [-compare BENCH_3.json]
//
// Multiple -count repetitions are averaged per benchmark. With
// -compare, the new numbers are diffed against a prior snapshot and a
// per-benchmark ns/op + allocs/op delta table is printed — the
// regression view a perf PR pastes into its description.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's aggregated numbers.
type Result struct {
	Name       string             `json:"name"`
	Runs       int                `json:"runs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // ns/op, B/op, allocs/op, acc, ...
}

// Report is the BENCH_<n>.json document.
type Report struct {
	ID         string   `json:"id"`
	Note       string   `json:"note,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Bench      string   `json:"bench_regex"`
	BenchTime  string   `json:"benchtime"`
	Count      int      `json:"count"`
	DurationMS int64    `json:"duration_ms"`
	Results    []Result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	benchRe := flag.String("bench", "BenchmarkRunParallelDescriptor|BenchmarkGoodMatchCount|BenchmarkRunParallel$|BenchmarkServeThroughput|BenchmarkServeBatcher|BenchmarkSnapshot$|BenchmarkSnapshotMap|BenchmarkQueryExtract|BenchmarkDetectScene|BenchmarkSceneRobustness|BenchmarkANNRecall|BenchmarkObsOverhead",
		"benchmark regex passed to go test -bench")
	benchTime := flag.String("benchtime", "3x", "go test -benchtime value")
	count := flag.Int("count", 3, "go test -count repetitions (averaged)")
	outPath := flag.String("out", "BENCH_8.json", "output JSON path")
	pkg := flag.String("pkg", ".", "package to benchmark")
	note := flag.String("note", "", "free-form note recorded in the report")
	comparePath := flag.String("compare", "", "prior BENCH_<n>.json to diff the new numbers against")
	flag.Parse()

	args := []string{
		"test", "-run", "^$",
		"-bench", *benchRe,
		"-benchmem",
		"-benchtime", *benchTime,
		"-count", strconv.Itoa(*count),
		*pkg,
	}
	log.Printf("running go %s", strings.Join(args, " "))
	start := time.Now()
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		log.Fatalf("go test -bench failed: %v", err)
	}
	elapsed := time.Since(start)

	results := parseBenchOutput(bytes.NewReader(out))
	if len(results) == 0 {
		log.Fatal("no benchmark lines parsed; is the regex right?")
	}

	id := strings.TrimSuffix(strings.TrimSuffix(*outPath, ".json"), ".JSON")
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		id = id[i+1:]
	}
	report := Report{
		ID:         id,
		Note:       *note,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      *benchRe,
		BenchTime:  *benchTime,
		Count:      *count,
		DurationMS: elapsed.Milliseconds(),
		Results:    results,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-60s %12.0f ns/op", r.Name, r.Metrics["ns/op"])
		if acc, ok := r.Metrics["acc"]; ok {
			fmt.Printf("  acc=%.4f", acc)
		}
		if al, ok := r.Metrics["allocs/op"]; ok {
			fmt.Printf("  allocs/op=%.0f", al)
		}
		fmt.Println()
	}
	fmt.Printf("wrote %s (%d benchmarks, %s)\n", *outPath, len(results), elapsed.Round(time.Second))

	if *comparePath != "" {
		prior, err := loadReport(*comparePath)
		if err != nil {
			log.Fatalf("compare: %v", err)
		}
		printComparison(prior, report)
	}
}

// loadReport reads a previously written BENCH_<n>.json.
func loadReport(path string) (Report, error) {
	var r Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		return r, fmt.Errorf("parse %s: %w", path, err)
	}
	return r, nil
}

// printComparison diffs the new report against a prior snapshot:
// per-benchmark ns/op and allocs/op with relative deltas, plus the
// benchmarks that appear on only one side. Positive deltas are
// regressions (slower / more allocations).
func printComparison(old, cur Report) {
	oldBy := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	fmt.Printf("\ncomparison vs %s:\n", old.ID)
	fmt.Printf("%-60s %14s %14s %8s %12s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs")
	overlap := 0
	for _, r := range cur.Results {
		o, ok := oldBy[r.Name]
		if !ok {
			fmt.Printf("%-60s %14s %14.0f %8s %12s %12.0f  (new)\n",
				r.Name, "-", r.Metrics["ns/op"], "-", "-", r.Metrics["allocs/op"])
			continue
		}
		overlap++
		delete(oldBy, r.Name)
		oldNs, newNs := o.Metrics["ns/op"], r.Metrics["ns/op"]
		delta := "-"
		if oldNs > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(newNs-oldNs)/oldNs)
		}
		fmt.Printf("%-60s %14.0f %14.0f %8s %12.0f %12.0f\n",
			r.Name, oldNs, newNs, delta, o.Metrics["allocs/op"], r.Metrics["allocs/op"])
	}
	if len(oldBy) > 0 {
		gone := make([]string, 0, len(oldBy))
		for name := range oldBy {
			gone = append(gone, name)
		}
		sort.Strings(gone)
		for _, name := range gone {
			fmt.Printf("%-60s  (dropped since %s)\n", name, old.ID)
		}
	}
	if overlap == 0 {
		fmt.Println("(no overlapping benchmarks)")
	}
}

// parseBenchOutput folds standard `go test -bench` lines — name,
// iteration count, then (value, unit) pairs — into per-name means.
func parseBenchOutput(r *bytes.Reader) []Result {
	type agg struct {
		runs  int
		iters int64
		sums  map[string]float64
	}
	byName := map[string]*agg{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// Strip the -N GOMAXPROCS suffix go test appends to the name.
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		a := byName[name]
		if a == nil {
			a = &agg{sums: map[string]float64{}}
			byName[name] = a
			order = append(order, name)
		}
		a.runs++
		a.iters = iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			a.sums[fields[i+1]] += v
		}
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		a := byName[name]
		metrics := make(map[string]float64, len(a.sums))
		for unit, sum := range a.sums {
			metrics[unit] = sum / float64(a.runs)
		}
		out = append(out, Result{Name: name, Runs: a.runs, Iterations: a.iters, Metrics: metrics})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
