// Command snserve is the recognition daemon: it loads (or builds)
// prepared galleries, shards their flat matching indexes, and serves
// classification over HTTP with request batching and bounded admission.
//
// Usage:
//
//	snserve -snapshot sns1.snap [-snapshot more.snap] [-addr :8080] [-shards 4]
//	snserve -snapshot sns1.snap -mmap                             # zero-copy map the (v2) snapshot instead of decoding it
//	snserve -build sns1 [-size 64] [-descriptors sift,surf,orb]   # no snapshot: render + extract at boot
//	snserve -snapshot sns1.snap -admin 6060                       # admin mux on 127.0.0.1:6060 (/metrics, /statz, /debug/pprof/)
//	snserve -snapshot sns1.snap -slowlog-ms 250                   # JSON slow-query log for requests >= 250ms
//	snserve -snapshot sns1.snap -request-timeout 500ms            # 504 (with partial stage trace) past the deadline
//	snserve -snapshot sns1.snap -faults shard-scan:latency:delay=100ms:every=50   # fault injection (also $SNMATCH_FAULTS)
//
// Port layout: the serving address (-addr, default :8080) carries the
// public endpoints, including /metrics and /statz so scrapers reach the
// daemon without extra wiring. The optional admin port (-admin, always
// bound to 127.0.0.1) carries the same /metrics and /statz plus the
// net/http/pprof profiling handlers — profiling never rides the public
// listener. -pprof PORT remains as a deprecated alias for -admin PORT.
//
// Endpoints (serving mux):
//
//	POST /classify?gallery=NAME&pipeline=P   raw PNG body, or JSON {"images": [base64 PNG, ...]}
//	POST /detect?gallery=NAME&pipeline=P     raw PNG scene body -> per-region classifications
//	GET  /galleries                          registered galleries and their prepared indexes
//	GET  /healthz                            liveness + admission stats
//	GET  /metrics                            Prometheus text metrics
//	GET  /statz                              the same metrics as JSON (count/mean/p50/p90/p99)
//
// SIGINT/SIGTERM drain in-flight requests and exit cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on the default mux, served only on -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"snmatch/internal/cliutil"
	"snmatch/internal/fault"
	"snmatch/internal/obs"
	"snmatch/internal/pipeline"
	"snmatch/internal/serve"
	"snmatch/internal/serve/snapshot"
)

// snapshotList collects repeated -snapshot flags.
type snapshotList []string

func (s *snapshotList) String() string     { return strings.Join(*s, ",") }
func (s *snapshotList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("snserve: ")

	var snaps snapshotList
	fs := flag.CommandLine
	fs.Var(&snaps, "snapshot", "gallery snapshot to serve (repeatable)")
	mmap := fs.Bool("mmap", false, "memory-map v2 snapshots (zero-copy load off the page cache) instead of decoding them onto the heap")
	build := fs.String("build", "", "build a gallery at boot instead: sns1 or sns2")
	descs := fs.String("descriptors", "sift,surf,orb", "descriptor families to prepare for a built gallery")
	size := fs.Int("size", 64, "render size for a built gallery")
	seed := fs.Uint64("seed", 1, "render seed for a built gallery")
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 4, "index shards scanned in parallel per query")
	maxBatch := fs.Int("batch", 16, "max queries coalesced into one batch")
	batchWait := fs.Duration("batch-wait", 2*time.Millisecond, "coalescing window after the first queued query")
	maxInFlight := fs.Int("max-inflight", 256, "admission bound on concurrent /classify requests")
	ratio := fs.Float64("ratio", 0.5, "descriptor ratio-test threshold")
	maxRegions := fs.Int("max-regions", 32, "region proposals classified per /detect scene")
	adminPort := fs.Int("admin", 0, "serve the admin mux (/metrics, /statz, /debug/pprof/) on 127.0.0.1:PORT (0 disables)")
	pprofPort := fs.Int("pprof", 0, "deprecated alias for -admin")
	slowlogMS := fs.Int("slowlog-ms", 0, "log requests slower than this as JSON lines on stderr (0 disables)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline for /classify and /detect; expired requests get 504 with their partial stage trace (0 disables)")
	faults := fs.String("faults", os.Getenv(fault.EnvVar),
		"fault-injection spec, e.g. 'batcher-enqueue:error:every=100'; points: snapshot-read, batcher-enqueue, shard-scan, swap (default $"+fault.EnvVar+")")
	workers := cliutil.Workers(fs)
	idxFlags := cliutil.RegisterIndexFlags(fs)
	flag.Parse()
	w := cliutil.ResolveWorkers(*workers)
	spec, err := idxFlags.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	if *faults != "" {
		// Armed before any snapshot read, so boot-path faults (e.g.
		// snapshot-read:error) fire too. Disarmed runs compile every
		// fault point down to one atomic load.
		if err := fault.Arm(*faults); err != nil {
			log.Fatal(err)
		}
		log.Printf("fault injection armed: %s", *faults)
	}

	reg := serve.NewRegistry()
	for _, path := range snaps {
		start := time.Now()
		if *mmap {
			// The mapping's reference transfers to the registry; it lives
			// for the process (replacement would release it after drain).
			m, err := snapshot.Map(path)
			if err != nil {
				log.Fatalf("map %s: %v", path, err)
			}
			snap := m.Snap
			if err := snap.Gallery.SetIndexSpec(spec); err != nil {
				log.Fatal(err)
			}
			if err := reg.AddMapped(snap.Name, pipeline.NewShardedGallery(snap.Gallery, *shards), snap.Meta, m); err != nil {
				log.Fatal(err)
			}
			log.Printf("mapped gallery %q from %s: %d views, %d bytes (dataset %q, size %d, seed %d) in %s (zero-copy)",
				snap.Name, path, snap.Gallery.Len(), m.Size(), snap.Meta.Dataset, snap.Meta.Size, snap.Meta.Seed,
				time.Since(start).Round(time.Microsecond))
			continue
		}
		snap, err := snapshot.Load(path)
		if err != nil {
			log.Fatalf("load %s: %v", path, err)
		}
		if err := snap.Gallery.SetIndexSpec(spec); err != nil {
			log.Fatal(err)
		}
		if err := reg.AddWithMeta(snap.Name, pipeline.NewShardedGallery(snap.Gallery, *shards), snap.Meta); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded gallery %q from %s: %d views (dataset %q, size %d, seed %d) in %s (no re-extraction)",
			snap.Name, path, snap.Gallery.Len(), snap.Meta.Dataset, snap.Meta.Size, snap.Meta.Seed,
			time.Since(start).Round(time.Millisecond))
	}
	if *build != "" {
		name, g := buildGallery(*build, *size, *seed, *descs, w)
		if err := g.SetIndexSpec(spec); err != nil {
			log.Fatal(err)
		}
		meta := snapshot.Meta{Dataset: name, Size: *size, Seed: *seed}
		if err := reg.AddWithMeta(name, pipeline.NewShardedGallery(g, *shards), meta); err != nil {
			log.Fatal(err)
		}
	}
	if reg.Len() == 0 {
		log.Fatal("nothing to serve: pass -snapshot and/or -build (e.g. -build sns1)")
	}

	srv := serve.New(reg, serve.Config{
		Workers:     w,
		MaxBatch:    *maxBatch,
		BatchWait:   *batchWait,
		MaxInFlight: *maxInFlight,
		Ratio:       *ratio,
		MaxRegions:  *maxRegions,
		SlowLog:     time.Duration(*slowlogMS) * time.Millisecond,

		RequestTimeout: *reqTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *adminPort == 0 {
		*adminPort = *pprofPort // deprecated alias
	}
	if *adminPort > 0 {
		// The admin mux stays loopback-only and off the serving listener:
		// metrics and statz for local inspection, plus the pprof handlers
		// (registered on http.DefaultServeMux by the blank import), which
		// only this listener exposes.
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", obs.PromHandler(obs.Default))
		mux.HandleFunc("/statz", obs.StatzHandler(obs.Default))
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		adminAddr := fmt.Sprintf("127.0.0.1:%d", *adminPort)
		go func() {
			log.Printf("admin mux listening on http://%s (/metrics, /statz, /debug/pprof/)", adminAddr)
			if err := http.ListenAndServe(adminAddr, mux); err != nil {
				log.Printf("admin: %v", err)
			}
		}()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	log.Printf("serving %d galleries on %s (index=%s shards=%d batch=%d wait=%s inflight=%d)",
		reg.Len(), *addr, spec, *shards, *maxBatch, *batchWait, *maxInFlight)

	select {
	case err := <-done:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}
	log.Print("shutting down...")
	shutdownCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
	defer stop()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	srv.Close()
	log.Print("bye")
}

// buildGallery renders and prepares a gallery at boot — the snapshotless
// path for development; production boots should load snapshots.
func buildGallery(set string, size int, seed uint64, descs string, workers int) (string, *pipeline.Gallery) {
	kinds, err := cliutil.ParseDescriptorKinds(descs)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	g, err := cliutil.BuildPreparedGallery(set, size, seed, kinds, workers)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("built gallery %q: %d views prepared in %s", set, g.Len(), time.Since(start).Round(time.Millisecond))
	return set, g
}
