// Command experiments regenerates every table of the paper (Tables 1-9)
// from the synthetic datasets and prints them in the paper's layout.
//
// Usage:
//
//	experiments [-scale quick|medium|full] [-skip-neural] [-workers N] [-out report.txt]
//
// quick matches the test-suite budget (seconds); medium uses the full
// Table 1 cardinalities with a reduced neural budget (minutes); full
// additionally runs the complete §3.4 training protocol.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"snmatch/internal/cliutil"
	"snmatch/internal/experiments"
	"snmatch/internal/pipeline"
	"snmatch/internal/serve/snapshot"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "experiment scale: quick, medium or full")
	skipNeural := flag.Bool("skip-neural", false, "skip the Table 4 neural experiment")
	outPath := flag.String("out", "", "also write the report to this file")
	snapPath := flag.String("snapshot", "", "SNS1 gallery snapshot: load it when the file exists (skipping gallery prep), otherwise save the prepared gallery there after prewarm")
	workers := cliutil.Workers(flag.CommandLine)
	idxFlags := cliutil.RegisterIndexFlags(flag.CommandLine)
	flag.Parse()
	indexSpec, err := idxFlags.Resolve()
	if err != nil {
		log.Fatal(err)
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick()
	case "medium":
		scale = experiments.Full()
		scale.NYUPerClassCap = 100
		scale.TrainPairs = 800
		scale.NXCorrEpochs = 8
		scale.NXCorrInput = 16
		scale.ImageSize = 64
	case "full":
		scale = experiments.Full()
	default:
		log.Fatalf("unknown scale %q", *scaleFlag)
	}
	scale.Workers = cliutil.ResolveWorkers(*workers)

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	fmt.Fprintf(out, "snmatch experiment suite — scale %q\n", *scaleFlag)

	// A snapshot replaces the cold-start gallery preparation: it is
	// loaded before the suite is assembled so the gallery's
	// preprocessing pass is skipped entirely, and its descriptor
	// indexes arrive prebuilt for the Table 3/9 sweeps. The provenance
	// check pins the snapshot to this scale's render parameters — a
	// gallery from another size or seed would silently change every
	// table.
	snapMeta := snapshot.Meta{Dataset: "sns1", Size: scale.ImageSize, Seed: scale.Seed}
	var snapGallery *pipeline.Gallery
	if *snapPath != "" {
		snap, err := cliutil.LoadSnapshotIfExists(*snapPath, snapMeta)
		if err != nil {
			log.Fatal(err)
		}
		if snap != nil {
			snapGallery = snap.Gallery
			fmt.Fprintf(out, "loaded prepared SNS1 gallery %q from %s (no re-extraction)\n", snap.Name, *snapPath)
		}
	}
	fmt.Fprintf(out, "building datasets...\n")
	suite := experiments.NewSuiteWithGallery(scale, snapGallery)
	if err := suite.GallerySNS1.SetIndexSpec(indexSpec); err != nil {
		log.Fatal(err)
	}
	if indexSpec.Kind != pipeline.ExactKind {
		fmt.Fprintf(out, "descriptor matching index: %s\n", indexSpec)
	}

	sectionStart := time.Now()
	section := func(title string) {
		if title != "Table 1: dataset statistics" {
			fmt.Fprintf(out, "(section took %s)\n", time.Since(sectionStart).Round(time.Millisecond))
		}
		sectionStart = time.Now()
		fmt.Fprintf(out, "\n================ %s ================\n", title)
	}

	section("Table 1: dataset statistics")
	fmt.Fprint(out, suite.Table1())

	section("Table 2: cumulative accuracy, exploratory trials")
	t2 := suite.Table2()
	fmt.Fprint(out, experiments.FormatTable2(t2))

	section("Table 3: descriptor cumulative accuracy (SNS2 v. SNS1, ratio 0.5)")
	fmt.Fprintln(out, "prewarming descriptor indexes...")
	suite.PrewarmDescriptors()
	if *snapPath != "" && snapGallery == nil {
		if err := cliutil.SaveSnapshot(*snapPath, snapMeta, suite.GallerySNS1); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "saved prepared SNS1 gallery to %s for future runs\n", *snapPath)
	}
	t3 := suite.Table3(0.5)
	fmt.Fprint(out, experiments.FormatTable3(t3))

	section("Table 5: class-wise shape-only (NYU v. SNS1)")
	fmt.Fprint(out, experiments.FormatClasswise("", []string{
		"Baseline", "Shape only L1", "Shape only L2", "Shape only L3",
	}, suite.Table5()))

	section("Table 6: class-wise colour-only (NYU v. SNS1)")
	fmt.Fprint(out, experiments.FormatClasswise("", []string{
		"Color only Correlation", "Color only Chi-square",
		"Color only Intersection", "Color only Hellinger",
	}, suite.Table6()))

	section("Table 7: class-wise hybrid (NYU v. SNS1, L3+Hellinger a=0.3 b=0.7)")
	fmt.Fprint(out, experiments.FormatClasswise("", []string{
		"Shape+Color (weighted sum)", "Shape+Color (micro-avg)", "Shape+Color (macro-avg)",
	}, suite.Table7()))

	section("Table 8: class-wise hybrid (SNS2 v. SNS1)")
	fmt.Fprint(out, experiments.FormatClasswise("", []string{
		"Shape+Color (weighted sum)", "Shape+Color (micro-avg)", "Shape+Color (macro-avg)",
	}, suite.Table8()))

	section("Table 9: class-wise descriptors (SNS2 v. SNS1, ratio 0.5)")
	fmt.Fprint(out, experiments.FormatClasswise("", []string{
		"SIFT", "SURF", "ORB",
	}, t3.Classwise))

	section("Scene robustness: detect-then-classify v. occlusion/noise/object count")
	fmt.Fprint(out, experiments.FormatSceneRobustness(
		suite.SceneRobustness(pipeline.DefaultHybrid(pipeline.WeightedSum), experiments.DefaultSceneAxes())))

	if !*skipNeural {
		section("Table 4: Normalized-X-Corr pair classification")
		fmt.Fprintln(out, "training...")
		t4, err := suite.Table4(out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprint(out, experiments.FormatTable4(t4))
	}

	fmt.Fprintf(out, "\ncompleted in %s\n", time.Since(start).Round(time.Second))
}
