// Command experiments regenerates every table of the paper (Tables 1-9)
// from the synthetic datasets and prints them in the paper's layout.
//
// Usage:
//
//	experiments [-scale quick|medium|full] [-skip-neural] [-workers N] [-out report.txt]
//
// quick matches the test-suite budget (seconds); medium uses the full
// Table 1 cardinalities with a reduced neural budget (minutes); full
// additionally runs the complete §3.4 training protocol.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"snmatch/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "experiment scale: quick, medium or full")
	skipNeural := flag.Bool("skip-neural", false, "skip the Table 4 neural experiment")
	outPath := flag.String("out", "", "also write the report to this file")
	workers := flag.Int("workers", 0, "classification worker pool size (0 = one per CPU)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick()
	case "medium":
		scale = experiments.Full()
		scale.NYUPerClassCap = 100
		scale.TrainPairs = 800
		scale.NXCorrEpochs = 8
		scale.NXCorrInput = 16
		scale.ImageSize = 64
	case "full":
		scale = experiments.Full()
	default:
		log.Fatalf("unknown scale %q", *scaleFlag)
	}
	scale.Workers = *workers

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	fmt.Fprintf(out, "snmatch experiment suite — scale %q\n", *scaleFlag)
	fmt.Fprintf(out, "building datasets...\n")
	suite := experiments.NewSuite(scale)

	sectionStart := time.Now()
	section := func(title string) {
		if title != "Table 1: dataset statistics" {
			fmt.Fprintf(out, "(section took %s)\n", time.Since(sectionStart).Round(time.Millisecond))
		}
		sectionStart = time.Now()
		fmt.Fprintf(out, "\n================ %s ================\n", title)
	}

	section("Table 1: dataset statistics")
	fmt.Fprint(out, suite.Table1())

	section("Table 2: cumulative accuracy, exploratory trials")
	t2 := suite.Table2()
	fmt.Fprint(out, experiments.FormatTable2(t2))

	section("Table 3: descriptor cumulative accuracy (SNS2 v. SNS1, ratio 0.5)")
	fmt.Fprintln(out, "prewarming descriptor indexes...")
	suite.PrewarmDescriptors()
	t3 := suite.Table3(0.5)
	fmt.Fprint(out, experiments.FormatTable3(t3))

	section("Table 5: class-wise shape-only (NYU v. SNS1)")
	fmt.Fprint(out, experiments.FormatClasswise("", []string{
		"Baseline", "Shape only L1", "Shape only L2", "Shape only L3",
	}, suite.Table5()))

	section("Table 6: class-wise colour-only (NYU v. SNS1)")
	fmt.Fprint(out, experiments.FormatClasswise("", []string{
		"Color only Correlation", "Color only Chi-square",
		"Color only Intersection", "Color only Hellinger",
	}, suite.Table6()))

	section("Table 7: class-wise hybrid (NYU v. SNS1, L3+Hellinger a=0.3 b=0.7)")
	fmt.Fprint(out, experiments.FormatClasswise("", []string{
		"Shape+Color (weighted sum)", "Shape+Color (micro-avg)", "Shape+Color (macro-avg)",
	}, suite.Table7()))

	section("Table 8: class-wise hybrid (SNS2 v. SNS1)")
	fmt.Fprint(out, experiments.FormatClasswise("", []string{
		"Shape+Color (weighted sum)", "Shape+Color (micro-avg)", "Shape+Color (macro-avg)",
	}, suite.Table8()))

	section("Table 9: class-wise descriptors (SNS2 v. SNS1, ratio 0.5)")
	fmt.Fprint(out, experiments.FormatClasswise("", []string{
		"SIFT", "SURF", "ORB",
	}, t3.Classwise))

	if !*skipNeural {
		section("Table 4: Normalized-X-Corr pair classification")
		fmt.Fprintln(out, "training...")
		t4, err := suite.Table4(out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprint(out, experiments.FormatTable4(t4))
	}

	fmt.Fprintf(out, "\ncompleted in %s\n", time.Since(start).Round(time.Second))
}
