// Command snlint runs the snmatch analyzer suite — the static gates
// for the determinism, zero-alloc, cancellation, atomic-access and
// unsafe-aliasing contracts — over the packages matching its
// arguments (./... by default).
//
// Exit status: 0 when clean, 1 when findings survive suppression,
// 2 when the load or an analyzer fails.
//
// Findings print one per line as file:line:col: message (analyzer).
// Intentional exceptions are annotated in source:
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line above it; the reason is required.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"snmatch/internal/analysis/snlint"
)

func main() {
	var (
		only = flag.String("only", "", "comma-separated subset of analyzers to run")
		list = flag.Bool("list", false, "print the analyzer suite and exit")
		dir  = flag.String("C", ".", "directory to resolve package patterns in")
	)
	flag.Parse()

	if *list {
		for _, a := range snlint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var subset []string
	if *only != "" {
		subset = strings.Split(*only, ",")
	}

	findings, err := snlint.Run(*dir, patterns, subset)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "snlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
