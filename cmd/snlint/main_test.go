package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles cmd/snlint once per test binary.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "snlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building snlint: %v\n%s", err, out)
	}
	return bin
}

func runLint(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = filepath.Join("testdata", "fixture")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running snlint: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

func TestDriverFlagsKnownBadFixture(t *testing.T) {
	bin := buildBinary(t)
	out, code := runLint(t, bin, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}

	for _, want := range []string{
		"unordered iteration over map m",
		"(determinism)",
		"never checks ctx",
		"(ctxcheckpoint)",
		"lint:allow determinism directive without a justification",
		"(snlint)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}

	// Exactly one live determinism finding: KeysOf. MeanOf's justified
	// allow and FirstOf's bare allow both suppress theirs.
	if got := strings.Count(out, "(determinism)"); got != 1 {
		t.Errorf("determinism findings = %d, want 1 (suppressions must round-trip)\n%s", got, out)
	}
	if strings.Contains(out, "pipeline.go:22") {
		t.Errorf("suppressed finding at MeanOf's range leaked through\n%s", out)
	}
}

func TestDriverOnlySubset(t *testing.T) {
	bin := buildBinary(t)
	out, code := runLint(t, bin, "-only=ctxcheckpoint", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out)
	}
	if strings.Contains(out, "(determinism)") {
		t.Errorf("-only=ctxcheckpoint still ran determinism\n%s", out)
	}
	if !strings.Contains(out, "(ctxcheckpoint)") {
		t.Errorf("ctxcheckpoint finding missing\n%s", out)
	}
}

func TestDriverCleanPackageExitsZero(t *testing.T) {
	bin := buildBinary(t)
	out, code := runLint(t, bin, "./util")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("clean package produced output:\n%s", out)
	}
}

func TestDriverUnknownAnalyzerExitsTwo(t *testing.T) {
	bin := buildBinary(t)
	out, code := runLint(t, bin, "-only=nonexistent", "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "unknown analyzer") {
		t.Errorf("missing unknown-analyzer error\n%s", out)
	}
}
