// Known-bad fixture for the snlint driver test: one live determinism
// finding, one live ctxcheckpoint finding, one suppressed finding and
// one suppression missing its justification.
package pipeline

import "context"

// KeysOf leaks map order into its result: a live determinism finding.
func KeysOf(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// MeanOf carries a justified allow: the finding must round-trip to
// silence.
func MeanOf(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m { //lint:allow determinism fixture exercises the suppression round-trip
		t += v
	}
	return t / float64(len(m))
}

// FirstOf carries an allow with no reason: suppressed, but the bare
// directive is its own finding.
func FirstOf(m map[string]int) string {
	for k := range m { //lint:allow determinism
		return k
	}
	return ""
}

// ScanAll promises cancellation and never checks: a live
// ctxcheckpoint finding.
func ScanAll(ctx context.Context, rows []float64) float64 {
	sum := 0.0
	for _, r := range rows {
		sum += r
	}
	return sum
}
