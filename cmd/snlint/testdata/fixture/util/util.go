// The clean half of the fixture: nothing for any analyzer to say.
package util

// Add is beyond reproach.
func Add(a, b int) int { return a + b }
