// Command snrecog is the interactive CLI for the recognition library:
// it renders dataset sample sheets, prints dataset statistics, and
// classifies freshly rendered queries with any of the paper's pipelines.
//
// Usage:
//
//	snrecog sheet -dir out/            render a PNG sample sheet per class
//	snrecog stats                      print Table 1 dataset statistics
//	snrecog classify -class Chair -pipeline hybrid [-mode nyu]
//	snrecog scene -classes Chair,Bottle,Lamp    detect-then-classify a composed scene
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"snmatch/internal/cliutil"
	"snmatch/internal/dataset"
	"snmatch/internal/eval"
	"snmatch/internal/histogram"
	"snmatch/internal/moments"
	"snmatch/internal/pipeline"
	"snmatch/internal/serve"
	"snmatch/internal/serve/snapshot"
	"snmatch/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snrecog: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "sheet":
		cmdSheet(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "classify":
		cmdClassify(os.Args[2:])
	case "scene":
		cmdScene(os.Args[2:])
	case "snapshot":
		cmdSnapshot(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  snrecog sheet -dir DIR [-size N] [-seed N]     render class sample sheets
  snrecog stats [-cap N]                         print Table 1 statistics
  snrecog classify -class NAME [-pipeline P] [-mode shapenet|nyu] [-model N] [-view N] [-workers N] [-snapshot FILE] [-mmap] [-index exact|mih|ivf]
      pipelines: random, shape, color, hybrid, sift, surf, orb
  snrecog scene [-classes A,B,C] [-pipeline P] [-occlusion F] [-noise F] [-clutter N] [-seed N] [-out FILE] [-workers N]
      compose a multi-object scene and run detect-then-classify on it
  snrecog snapshot -out FILE [-set sns1|sns2] [-descriptors sift,surf,orb] [-size N] [-seed N] [-name NAME] [-format 2|1]
      prepare a gallery once and persist it for snserve / -snapshot reuse`)
	os.Exit(2)
}

// cmdSnapshot builds a fully prepared gallery and persists it: the
// one-off cost (rendering, descriptor extraction, index construction)
// is paid here so every later `classify -snapshot` or snserve boot
// skips it.
func cmdSnapshot(args []string) {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	out := fs.String("out", "", "output snapshot path (required)")
	set := fs.String("set", "sns1", "gallery dataset: sns1 or sns2")
	descs := fs.String("descriptors", "sift,surf,orb", "descriptor families to prepare")
	size := fs.Int("size", 64, "image side in pixels")
	seed := fs.Uint64("seed", 1, "render seed")
	name := fs.String("name", "", "registry name stored in the snapshot (default: the set name)")
	format := fs.Int("format", snapshot.Version, "snapshot format version: 2 (mmap-able, default) or 1 (legacy back-compat)")
	workers := cliutil.Workers(fs)
	fs.Parse(args)
	if *out == "" {
		log.Fatal("snapshot: -out is required")
	}
	if *format != snapshot.Version && *format != snapshot.VersionV1 {
		log.Fatalf("snapshot: unsupported -format %d (want %d or %d)", *format, snapshot.Version, snapshot.VersionV1)
	}
	w := cliutil.ResolveWorkers(*workers)
	kinds, err := cliutil.ParseDescriptorKinds(*descs)
	if err != nil {
		log.Fatal(err)
	}

	if *name == "" {
		*name = *set
	}

	start := time.Now()
	g, err := cliutil.BuildPreparedGallery(*set, *size, *seed, kinds, w)
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range kinds {
		nd, nv := g.IndexStats(k)
		fmt.Printf("prepared %s: %d descriptors across %d views\n", k, nd, nv)
	}
	snap := &snapshot.Snapshot{
		Name:    *name,
		Meta:    snapshot.Meta{Dataset: *set, Size: *size, Seed: *seed},
		Gallery: g,
	}
	saveFn := snapshot.Save
	if *format == snapshot.VersionV1 {
		saveFn = snapshot.SaveV1
	}
	if err := saveFn(*out, snap); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (v%d): gallery %q, %d views, %d bytes (prepared in %s)\n",
		*out, *format, *name, g.Len(), st.Size(), time.Since(start).Round(time.Millisecond))
}

func cmdSheet(args []string) {
	fs := flag.NewFlagSet("sheet", flag.ExitOnError)
	dir := fs.String("dir", "sheets", "output directory")
	size := fs.Int("size", 96, "image side in pixels")
	seed := fs.Uint64("seed", 1, "render seed")
	fs.Parse(args)

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	p := synth.Params{Size: *size, Seed: *seed}
	for _, cls := range synth.AllClasses {
		for _, mode := range []synth.Mode{synth.ShapeNetMode, synth.NYUMode} {
			img := synth.RenderView(cls, 0, 0, mode, p)
			name := fmt.Sprintf("%s_%s.png", cls, mode)
			if err := img.SavePNG(filepath.Join(*dir, name)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("wrote %d sample images to %s\n", 2*len(synth.AllClasses), *dir)
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	cap := fs.Int("cap", 50, "NYU per-class cap (0 = full 6,934-image set)")
	fs.Parse(args)

	cfg := dataset.Config{Size: 48, Seed: 1, NYUPerClassCap: *cap}
	s1 := dataset.BuildSNS1(cfg)
	s2 := dataset.BuildSNS2(cfg)
	ny := dataset.BuildNYU(cfg)
	fmt.Printf("%-8s %14s %14s %10s\n", "Object", "ShapeNetSet1", "ShapeNetSet2", "NYUSet")
	c1, c2, cn := s1.CountByClass(), s2.CountByClass(), ny.CountByClass()
	for _, cls := range synth.AllClasses {
		fmt.Printf("%-8s %14d %14d %10d\n", cls, c1[cls], c2[cls], cn[cls])
	}
	fmt.Printf("%-8s %14d %14d %10d\n", "Total", s1.Len(), s2.Len(), ny.Len())
}

// cmdScene composes a cluttered multi-object scene and runs the
// detect-then-classify loop on it, printing ground truth next to every
// detection so the localisation quality is visible at a glance.
func cmdScene(args []string) {
	fs := flag.NewFlagSet("scene", flag.ExitOnError)
	classList := fs.String("classes", "Chair,Bottle,Lamp", "comma-separated scene object classes")
	pipeName := fs.String("pipeline", "hybrid", "pipeline: shape, color, hybrid, sift, surf, orb")
	width := fs.Int("w", 320, "scene width in pixels")
	height := fs.Int("h", 240, "scene height in pixels")
	occ := fs.Float64("occlusion", 0, "requested overlap between stacked objects [0,1]")
	noise := fs.Float64("noise", 0, "Gaussian pixel-noise sigma")
	clutter := fs.Int("clutter", 2, "background clutter primitives")
	seed := fs.Uint64("seed", 1, "scene seed")
	size := fs.Int("size", 64, "gallery image side in pixels")
	out := fs.String("out", "", "save the composed scene PNG here")
	workers := cliutil.Workers(fs)
	fs.Parse(args)
	w := cliutil.ResolveWorkers(*workers)

	var classes []synth.Class
	for _, name := range strings.Split(*classList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cls, err := synth.ParseClass(name)
		if err != nil {
			log.Fatal(err)
		}
		classes = append(classes, cls)
	}
	p, err := serve.ParsePipeline(*pipeName, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	sc := synth.ComposeSceneP(synth.SceneParams{
		W: *width, H: *height, Seed: *seed,
		Classes:   classes,
		Occlusion: *occ, NoiseSigma: *noise, Clutter: *clutter,
	})
	if *out != "" {
		if err := sc.Image.SavePNG(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote scene to %s\n", *out)
	}
	fmt.Printf("scene: %dx%d, %d objects, occlusion %.2f, noise %.1f\n",
		*width, *height, len(sc.Objects), *occ, *noise)
	for i, o := range sc.Objects {
		fmt.Printf("  truth %d: %-7s box=(%d,%d %dx%d) occluded=%.2f\n",
			i, o.Class, o.Box.MinX, o.Box.MinY, o.Box.W(), o.Box.H(), o.Occluded)
	}

	fmt.Println("building SNS1 gallery...")
	gallery := pipeline.NewGalleryWorkers(dataset.BuildSNS1(dataset.Config{Size: *size, Seed: 1}), w)
	start := time.Now()
	dets := pipeline.Detect(sc.Image, p, gallery, pipeline.DetectParams{Workers: w})
	fmt.Printf("pipeline %s detected %d regions in %s:\n",
		p.Name(), len(dets), time.Since(start).Round(time.Millisecond))
	for i, d := range dets {
		fmt.Printf("  region %d: %-7s box=(%d,%d %dx%d) score=%.5f\n",
			i, d.Class, d.Box.MinX, d.Box.MinY, d.Box.W(), d.Box.H(), d.Score)
	}
}

func cmdClassify(args []string) {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	clsName := fs.String("class", "Chair", "true class of the rendered query")
	pipeName := fs.String("pipeline", "hybrid", "pipeline: random, shape, color, hybrid, sift, surf, orb")
	modeName := fs.String("mode", "nyu", "query rendering mode: shapenet or nyu")
	model := fs.Int("model", 42, "query model id (unseen ids exercise generalisation)")
	view := fs.Int("view", 0, "query view index")
	size := fs.Int("size", 64, "image side in pixels")
	seed := fs.Uint64("seed", 1, "render seed")
	snapPath := fs.String("snapshot", "", "gallery snapshot: load it when the file exists, otherwise build, prepare and save it")
	mmap := fs.Bool("mmap", false, "memory-map the -snapshot file (v2, zero-copy) instead of decoding it")
	workers := cliutil.Workers(fs)
	idxFlags := cliutil.RegisterIndexFlags(fs)
	fs.Parse(args)
	w := cliutil.ResolveWorkers(*workers)
	spec, err := idxFlags.Resolve()
	if err != nil {
		log.Fatal(err)
	}

	cls, err := synth.ParseClass(*clsName)
	if err != nil {
		log.Fatal(err)
	}
	mode := synth.NYUMode
	if *modeName == "shapenet" {
		mode = synth.ShapeNetMode
	}

	var p pipeline.Pipeline
	switch *pipeName {
	case "random":
		p = pipeline.NewRandom(*seed)
	case "shape":
		p = pipeline.ShapeOnly{Method: moments.MatchI3}
	case "color":
		p = pipeline.ColorOnly{Metric: histogram.Hellinger}
	case "hybrid":
		p = pipeline.DefaultHybrid(pipeline.WeightedSum)
	case "sift":
		p = pipeline.NewDescriptor(pipeline.SIFT, 0.5)
	case "surf":
		p = pipeline.NewDescriptor(pipeline.SURF, 0.5)
	case "orb":
		p = pipeline.NewDescriptor(pipeline.ORB, 0.5)
	default:
		log.Fatalf("unknown pipeline %q", *pipeName)
	}

	cfg := dataset.Config{Size: *size, Seed: *seed}
	meta := snapshot.Meta{Dataset: "sns1", Size: *size, Seed: *seed}
	var gallery *pipeline.Gallery
	if *snapPath != "" && *mmap {
		start := time.Now()
		m, err := cliutil.MapSnapshotIfExists(*snapPath, meta)
		if err != nil {
			log.Fatal(err)
		}
		if m != nil {
			defer m.Close() // classification finishes before main returns
			gallery = m.Snap.Gallery
			fmt.Printf("mapped gallery %q from %s in %s (zero-copy)\n",
				m.Snap.Name, *snapPath, time.Since(start).Round(time.Microsecond))
		}
	} else if *snapPath != "" {
		start := time.Now()
		snap, err := cliutil.LoadSnapshotIfExists(*snapPath, meta)
		if err != nil {
			log.Fatal(err)
		}
		if snap != nil {
			gallery = snap.Gallery
			fmt.Printf("loaded gallery %q from %s in %s (no re-extraction)\n",
				snap.Name, *snapPath, time.Since(start).Round(time.Millisecond))
		}
	}
	snapLoaded := gallery != nil
	if gallery == nil {
		fmt.Println("building SNS1 gallery...")
		gallery = pipeline.NewGalleryWorkers(dataset.BuildSNS1(cfg), w)
	}
	if err := gallery.SetIndexSpec(spec); err != nil {
		log.Fatal(err)
	}

	query := synth.RenderView(cls, *model, *view, mode, synth.Params{Size: *size, Seed: *seed})
	if prep, ok := p.(pipeline.Preparer); ok {
		prep.Prepare(gallery, w)
	}
	if *snapPath != "" && !snapLoaded {
		if err := cliutil.SaveSnapshot(*snapPath, meta, gallery); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved prepared gallery to %s for future runs\n", *snapPath)
	}
	if d, ok := p.(*pipeline.Descriptor); ok {
		nd, nv := gallery.IndexStats(d.Kind)
		fmt.Printf("index:      %s over %d %s descriptors across %d views\n", spec, nd, d.Kind, nv)
	}
	pred := p.Classify(query, gallery)
	fmt.Printf("pipeline:   %s\n", p.Name())
	fmt.Printf("truth:      %s (model %d, view %d, %s mode)\n", cls, *model, *view, mode)
	fmt.Printf("prediction: %s (gallery view %d, score %.5f)\n", pred.Class, pred.Index, pred.Score)
	if pred.Class == cls {
		fmt.Println("result:     correct")
	} else {
		fmt.Println("result:     wrong")
	}

	// Context: how often is this pipeline right on a 30-query sample?
	qs := dataset.BuildNYUSubset(dataset.Config{Size: *size, Seed: *seed + 9}, 3)
	preds, truth := pipeline.NewBatchClassifier(p, w).Run(qs, gallery)
	fmt.Printf("sample accuracy over %d fresh queries: %.2f\n",
		qs.Len(), eval.Evaluate(truth, preds).Cumulative)
}
