// Package snmatch's root tests exercise the full reproduction: every
// table of the paper regenerated at reduced scale, with assertions on
// the qualitative findings the reproduction targets (see DESIGN.md §4).
package snmatch

import (
	"io"
	"sync"
	"testing"

	"snmatch/internal/eval"
	"snmatch/internal/experiments"
	"snmatch/internal/synth"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	table2    experiments.Table2Result
)

// testSuite lazily builds one shared Quick-scale suite and the Table 2
// runs that several tests interrogate.
func testSuite(t *testing.T) (*experiments.Suite, experiments.Table2Result) {
	t.Helper()
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(experiments.Quick())
		table2 = suite.Table2()
	})
	return suite, table2
}

func TestTable1DatasetStatistics(t *testing.T) {
	s, _ := testSuite(t)
	if s.SNS1.Len() != 82 || s.SNS2.Len() != 100 {
		t.Fatalf("SNS sizes = %d/%d, want 82/100", s.SNS1.Len(), s.SNS2.Len())
	}
	nyuCounts := s.NYU.CountByClass()
	// Imbalance profile: chair most frequent, lamp least.
	if nyuCounts[synth.Chair] <= nyuCounts[synth.Lamp] {
		t.Errorf("NYU imbalance lost: chair %d vs lamp %d", nyuCounts[synth.Chair], nyuCounts[synth.Lamp])
	}
	if tbl := s.Table1(); len(tbl) == 0 {
		t.Error("empty Table 1")
	}
}

func TestTable2EveryPipelineBeatsBaseline(t *testing.T) {
	_, t2 := testSuite(t)
	base := t2.ByName["Baseline"]
	for name, vals := range t2.ByName {
		if name == "Baseline" {
			continue
		}
		// Paper finding: all configurations outperform random labels on
		// cumulative accuracy, on both dataset pairings.
		if vals[0] <= base[0] {
			t.Errorf("%s NYU accuracy %v <= baseline %v", name, vals[0], base[0])
		}
		if vals[1] <= base[1] {
			t.Errorf("%s SNS accuracy %v <= baseline %v", name, vals[1], base[1])
		}
	}
}

func TestTable2ColorBeatsShape(t *testing.T) {
	_, t2 := testSuite(t)
	// Paper finding: shape-only is the weakest family; the best
	// colour-only metric beats the best shape-only method.
	bestShape, bestColor := 0.0, 0.0
	for name, vals := range t2.ByName {
		switch {
		case len(name) > 10 && name[:10] == "Shape only":
			if vals[0] > bestShape {
				bestShape = vals[0]
			}
		case len(name) > 10 && name[:10] == "Color only":
			if vals[0] > bestColor {
				bestColor = vals[0]
			}
		}
	}
	if bestColor <= bestShape {
		t.Errorf("best color %v <= best shape %v (paper: color features dominate)", bestColor, bestShape)
	}
}

func TestTable2HybridCompetitive(t *testing.T) {
	_, t2 := testSuite(t)
	// Paper finding: the hybrid weighted sum matches the best
	// colour-only score (exactly equal in the paper; we allow a margin).
	bestColor := 0.0
	for name, vals := range t2.ByName {
		if len(name) > 10 && name[:10] == "Color only" && vals[0] > bestColor {
			bestColor = vals[0]
		}
	}
	ws := t2.ByName["Shape+Color (weighted sum)"]
	if ws[0] < bestColor*0.75 {
		t.Errorf("hybrid weighted sum %v far below best color %v", ws[0], bestColor)
	}
}

func TestTable2DomainGap(t *testing.T) {
	_, t2 := testSuite(t)
	// Paper finding: matching clean ShapeNet views against the ShapeNet
	// gallery is easier than matching NYU crops (Table 2's second column
	// exceeds its first for the informative configurations).
	better := 0
	informative := 0
	for name, vals := range t2.ByName {
		if name == "Baseline" {
			continue
		}
		informative++
		if vals[1] >= vals[0] {
			better++
		}
	}
	if better*2 < informative {
		t.Errorf("domain gap inverted: only %d/%d configurations easier on SNS data", better, informative)
	}
}

func TestTable3DescriptorsMidPack(t *testing.T) {
	if testing.Short() {
		t.Skip("descriptor matching is slow")
	}
	s, t2 := testSuite(t)
	t3 := s.Table3(0.5)
	base := t3.ByName["Baseline"]
	for _, kind := range []string{"SIFT", "SURF", "ORB"} {
		acc := t3.ByName[kind]
		if acc <= base {
			t.Errorf("%s accuracy %v <= baseline %v", kind, acc, base)
		}
		if acc < 0 || acc > 1 {
			t.Errorf("%s accuracy %v out of range", kind, acc)
		}
	}
	// Paper finding: descriptors stay below the hybrid strategies on the
	// same data (Table 3 vs Table 8: 0.22-0.25 vs 0.32).
	hybridSNS := t2.ByName["Shape+Color (weighted sum)"][1]
	for _, kind := range []string{"SIFT", "SURF", "ORB"} {
		if t3.ByName[kind] > hybridSNS+0.15 {
			t.Errorf("%s (%v) unexpectedly dominates hybrid (%v)", kind, t3.ByName[kind], hybridSNS)
		}
	}
	// Paper finding: the textureless Paper class collapses for
	// descriptor matching (0.00 rows in Table 9).
	for name, res := range t3.Classwise {
		if acc := res.PerClass[synth.Paper].Accuracy; acc > 0.5 {
			t.Errorf("%s paper-class accuracy %v, expected near-failure", name, acc)
		}
	}
}

func TestTable4NXCorrOverfits(t *testing.T) {
	if testing.Short() {
		t.Skip("neural training is slow")
	}
	s, _ := testSuite(t)
	t4, err := s.Table4(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Structural checks on both pair evaluations.
	if t4.SNS1Pairs.Similar.Support+t4.SNS1Pairs.Dissimilar.Support != 82*81/2 {
		t.Errorf("SNS1 pair support = %d+%d, want 3321",
			t4.SNS1Pairs.Similar.Support, t4.SNS1Pairs.Dissimilar.Support)
	}
	wantCross := s.Scale.NYUQueryPick * 10 * 82
	if t4.CrossPairs.Similar.Support+t4.CrossPairs.Dissimilar.Support != wantCross {
		t.Errorf("cross pair support sum != %d", wantCross)
	}
	// Paper finding: the model fails to separate unseen pairs — its F1
	// on "dissimilar" collapses relative to a useful classifier and the
	// "similar" recall is driven by over-predicting similarity. We
	// assert the defining signature: recall(similar) far exceeds
	// precision(similar) headroom, i.e. the classifier is not balanced.
	bal := t4.SNS1Pairs.Dissimilar.F1
	if bal > 0.95 {
		t.Errorf("dissimilar F1 = %v: the network generalised, which contradicts the paper", bal)
	}
}

func TestTables5Through8Classwise(t *testing.T) {
	s, _ := testSuite(t)
	t5 := s.Table5()
	t6 := s.Table6()
	t7 := s.Table7()
	t8 := s.Table8()

	for name, res := range t5 {
		if res.Total != s.NYU.Len() {
			t.Errorf("%s total = %d", name, res.Total)
		}
	}
	// Paper finding: recognition is unbalanced — for every configuration
	// some class does far better than some other.
	spread := func(label string, rs map[string]eval.Result) {
		for name, r := range rs {
			lo, hi := 1.0, 0.0
			for _, c := range synth.AllClasses {
				a := r.PerClass[c].Accuracy
				if a < lo {
					lo = a
				}
				if a > hi {
					hi = a
				}
			}
			if hi-lo < 0.1 {
				t.Errorf("%s/%s: class accuracies suspiciously uniform (spread %v)", label, name, hi-lo)
			}
		}
	}
	spread("table5", t5)
	spread("table6", t6)
	spread("table7", t7)
	spread("table8", t8)

	// Paper finding: the controlled SNS2-vs-SNS1 hybrid (Table 8) is at
	// least as accurate overall as the NYU hybrid (Table 7).
	for name := range t7 {
		if t8[name].Cumulative+0.05 < t7[name].Cumulative {
			t.Errorf("%s: SNS accuracy %v below NYU accuracy %v", name, t8[name].Cumulative, t7[name].Cumulative)
		}
	}
}
