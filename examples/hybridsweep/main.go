// Hybridsweep: the alpha/beta tuning the paper lists as future work.
// Sweeps the shape weight of the hybrid score theta = alpha*S + beta*C
// on the controlled SNS2-vs-SNS1 pairing and prints the accuracy curve,
// showing where the shape/colour trade-off peaks on this data.
package main

import (
	"fmt"
	"strings"

	"snmatch/internal/dataset"
	"snmatch/internal/eval"
	"snmatch/internal/histogram"
	"snmatch/internal/moments"
	"snmatch/internal/pipeline"
)

func main() {
	cfg := dataset.Config{Size: 64, Seed: 1}
	gallery := pipeline.NewGallery(dataset.BuildSNS1(cfg))
	queries := dataset.BuildSNS2(cfg)

	fmt.Println("hybrid weight sweep: theta = alpha*HuL3 + (1-alpha)*Hellinger")
	fmt.Printf("%-8s %-10s %s\n", "alpha", "accuracy", "")
	best, bestAlpha := -1.0, 0.0
	for i := 0; i <= 10; i++ {
		alpha := float64(i) / 10
		p := pipeline.Hybrid{
			ShapeMethod: moments.MatchI3,
			ColorMetric: histogram.Hellinger,
			Alpha:       alpha,
			Beta:        1 - alpha,
			Strategy:    pipeline.WeightedSum,
		}
		pred, truth := pipeline.Run(p, queries, gallery)
		acc := eval.Evaluate(truth, pred).Cumulative
		bar := strings.Repeat("#", int(acc*60))
		fmt.Printf("%-8.1f %-10.4f %s\n", alpha, acc, bar)
		if acc > best {
			best, bestAlpha = acc, alpha
		}
	}
	fmt.Printf("\nbest alpha = %.1f (accuracy %.4f)\n", bestAlpha, best)
	fmt.Println("alpha = 0.3 is the paper's reported setting; pure shape (1.0)")
	fmt.Println("and pure colour (0.0) bracket the hybrid's operating range.")
}
