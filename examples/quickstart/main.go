// Quickstart: build a ShapeNet-style reference gallery, render one
// unseen query object, and classify it with the paper's best-performing
// configuration (hybrid shape+colour matching).
package main

import (
	"fmt"

	"snmatch/internal/dataset"
	"snmatch/internal/pipeline"
	"snmatch/internal/synth"
)

func main() {
	// 1. Build the reference gallery: ShapeNetSet1, 82 views across the
	//    ten classes, preprocessed (grayscale -> threshold -> contour ->
	//    crop) with Hu moments and colour histograms cached per view.
	cfg := dataset.Config{Size: 64, Seed: 1}
	gallery := pipeline.NewGallery(dataset.BuildSNS1(cfg))
	fmt.Printf("gallery ready: %d reference views\n", gallery.Len())

	// 2. Render a query the gallery has never seen: a fresh lamp model
	//    in NYU mode (black mask, sensor noise, possible occlusion).
	query := synth.RenderView(synth.Lamp, 77, 0, synth.NYUMode, synth.Params{Size: 64, Seed: 1})

	// 3. Classify with the hybrid pipeline (Hu L3 + Hellinger histogram
	//    distance, alpha = 0.3, beta = 0.7 — the paper's most consistent
	//    configuration).
	p := pipeline.DefaultHybrid(pipeline.WeightedSum)
	pred := p.Classify(query, gallery)

	fmt.Printf("query truth:  %s\n", synth.Lamp)
	fmt.Printf("prediction:   %s (best view #%d, score %.4f)\n", pred.Class, pred.Index, pred.Score)
	if pred.Class == synth.Lamp {
		fmt.Println("correct!")
	} else {
		fmt.Println("wrong — welcome to task-agnostic object recognition in 2019")
	}
}
