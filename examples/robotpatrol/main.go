// Robot patrol: the paper's motivating scenario. A simulated mobile
// robot sweeps a sequence of rooms; each room image is segmented into
// object regions (the NYU-style crops the paper assumes as input), every
// region is classified against the ShapeNet gallery, and the results are
// accumulated into a small semantic map — the knowledge-acquisition loop
// of the paper's introduction.
package main

import (
	"fmt"

	"snmatch/internal/dataset"
	"snmatch/internal/pipeline"
	"snmatch/internal/synth"
)

func main() {
	cfg := dataset.Config{Size: 64, Seed: 3}
	gallery := pipeline.NewGallery(dataset.BuildSNS1(cfg))
	recogniser := pipeline.DefaultHybrid(pipeline.WeightedSum)

	rooms := [][]synth.Class{
		{synth.Chair, synth.Table, synth.Lamp, synth.Sofa},
		{synth.Door, synth.Window, synth.Box},
		{synth.Bottle, synth.Book, synth.Paper, synth.Chair},
	}

	type mapEntry struct {
		room  int
		class synth.Class
		x, y  int
	}
	var semanticMap []mapEntry
	correct, total := 0, 0

	for roomID, contents := range rooms {
		scene := synth.ComposeScene(contents, 400, 300, uint64(100+roomID))
		fmt.Printf("room %d: %d segmented regions\n", roomID+1, len(scene.Objects))
		for i, obj := range scene.Objects {
			crop := scene.CropObject(i)
			if crop == nil {
				continue
			}
			pred := recogniser.Classify(crop, gallery)
			cx := (obj.Box.MinX + obj.Box.MaxX) / 2
			cy := (obj.Box.MinY + obj.Box.MaxY) / 2
			semanticMap = append(semanticMap, mapEntry{roomID + 1, pred.Class, cx, cy})
			status := "MISS"
			if pred.Class == obj.Class {
				status = "ok"
				correct++
			}
			total++
			fmt.Printf("  region at (%3d,%3d): truth %-7s -> predicted %-7s [%s]\n",
				cx, cy, obj.Class, pred.Class, status)
		}
	}

	fmt.Println("\nsemantic map:")
	for _, e := range semanticMap {
		fmt.Printf("  room %d: %-7s at (%d, %d)\n", e.room, e.class, e.x, e.y)
	}
	fmt.Printf("\npatrol recognition accuracy: %d/%d (%.0f%%)\n",
		correct, total, 100*float64(correct)/float64(total))
}
