// Siamese: reproduces the paper's §3.4 finding in miniature. A
// Normalized-X-Corr network is trained on SNS2 image pairs (52% similar)
// and then evaluated on pairs built from the unseen SNS1 views — where,
// as in the paper's Table 4, it fails to generalise and floods the
// "similar" class with false positives.
package main

import (
	"fmt"
	"os"

	"snmatch/internal/dataset"
	"snmatch/internal/eval"
	"snmatch/internal/nn"
	"snmatch/internal/pipeline"
)

func main() {
	cfg := dataset.Config{Size: 48, Seed: 5}
	sns1 := dataset.BuildSNS1(cfg)
	sns2 := dataset.BuildSNS2(cfg)

	// Training protocol scaled for a single CPU: same architecture,
	// optimiser (Adam lr 1e-4 decay 1e-7), batch size 16 and early
	// stopping rule as §3.4, with fewer pairs and a smaller input.
	netCfg := nn.DefaultConfig(16)
	netCfg.Seed = 5
	pairs := dataset.TrainPairs(sns2, 400, 0.52, 17)
	fit := nn.DefaultFit()
	fit.Epochs = 6
	fit.Seed = 23

	fmt.Printf("training Normalized-X-Corr on %d SNS2 pairs (%.0f%% similar)...\n",
		len(pairs), 100*dataset.PositiveFraction(pairs))
	neural, res, err := pipeline.TrainNeural(netCfg, sns2, pairs, fit, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("trained %d epochs, final loss %.4f (early stop: %v)\n\n",
		res.Epochs, res.FinalLoss, res.EarlyStop)

	// Evaluate on all 3,321 SNS1 pairs — unseen models of the same
	// classes, the paper's first test set.
	testPairs := dataset.AllPairs(sns1)
	pred, truth := neural.ClassifyPairs(testPairs, sns1, sns1)
	r := eval.EvaluatePairs(truth, pred)
	fmt.Print(r.PairTable("ShapeNetSet1 pairs"))

	fmt.Println("\nreading the table: recall(similar) far above precision(similar) —")
	fmt.Println("which sits near the positive rate — means the network floods the")
	fmt.Println("'similar' class on unseen models: the overfitting collapse the")
	fmt.Println("paper reports in Table 4.")
}
