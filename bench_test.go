package snmatch

// Benchmark harness: one benchmark per paper table (Tables 1-9) plus the
// ablation benches listed in DESIGN.md §5. Each benchmark iteration runs
// the table's full (Quick-scale) workload and reports the achieved
// cumulative accuracy as a custom metric, so `go test -bench` both times
// the pipelines and regenerates the result shapes.

import (
	"bytes"
	"context"
	"io"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"snmatch/internal/contour"
	"snmatch/internal/dataset"
	"snmatch/internal/eval"
	"snmatch/internal/experiments"
	"snmatch/internal/features"
	"snmatch/internal/features/match"
	"snmatch/internal/histogram"
	"snmatch/internal/moments"
	"snmatch/internal/nn"
	"snmatch/internal/obs"
	"snmatch/internal/pipeline"
	"snmatch/internal/rng"
	"snmatch/internal/serve"
	"snmatch/internal/serve/snapshot"
	"snmatch/internal/synth"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

func getBenchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.Quick())
	})
	return benchSuite
}

// BenchmarkTable1DatasetGeneration regenerates the three datasets of
// Table 1 (at Quick scale) per iteration.
func BenchmarkTable1DatasetGeneration(b *testing.B) {
	cfg := dataset.Config{Size: 64, Seed: 1, NYUPerClassCap: 30}
	for i := 0; i < b.N; i++ {
		s1 := dataset.BuildSNS1(cfg)
		s2 := dataset.BuildSNS2(cfg)
		ny := dataset.BuildNYU(cfg)
		if s1.Len()+s2.Len()+ny.Len() == 0 {
			b.Fatal("empty datasets")
		}
	}
}

// BenchmarkTable2ExploratoryMatching runs the full 11-configuration
// exploratory grid of Table 2 per iteration.
func BenchmarkTable2ExploratoryMatching(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	var last experiments.Table2Result
	for i := 0; i < b.N; i++ {
		last = s.Table2()
	}
	b.ReportMetric(last.ByName["Color only Hellinger"][0], "hellinger-nyu-acc")
	b.ReportMetric(last.ByName["Shape+Color (weighted sum)"][1], "hybrid-sns-acc")
}

// BenchmarkTable3Descriptors runs the SIFT/SURF/ORB grid of Table 3.
func BenchmarkTable3Descriptors(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	var last experiments.Table3Result
	for i := 0; i < b.N; i++ {
		last = s.Table3(0.5)
	}
	b.ReportMetric(last.ByName["SIFT"], "sift-acc")
	b.ReportMetric(last.ByName["ORB"], "orb-acc")
}

// BenchmarkTable4NXCorr trains and evaluates the Normalized-X-Corr
// network per iteration (Quick scale).
func BenchmarkTable4NXCorr(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	var last experiments.Table4Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = s.Table4(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.SNS1Pairs.Similar.Recall, "similar-recall")
	b.ReportMetric(last.SNS1Pairs.Dissimilar.F1, "dissimilar-f1")
}

// BenchmarkTable5ShapeClasswise runs the class-wise shape-only grid.
func BenchmarkTable5ShapeClasswise(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	var res map[string]eval.Result
	for i := 0; i < b.N; i++ {
		res = s.Table5()
	}
	b.ReportMetric(res["Shape only L3"].Cumulative, "l3-acc")
}

// BenchmarkTable6ColorClasswise runs the class-wise colour-only grid.
func BenchmarkTable6ColorClasswise(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	var res map[string]eval.Result
	for i := 0; i < b.N; i++ {
		res = s.Table6()
	}
	b.ReportMetric(res["Color only Hellinger"].Cumulative, "hellinger-acc")
}

// BenchmarkTable7HybridClasswise runs the NYU-vs-SNS1 hybrid grid.
func BenchmarkTable7HybridClasswise(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	var res map[string]eval.Result
	for i := 0; i < b.N; i++ {
		res = s.Table7()
	}
	b.ReportMetric(res["Shape+Color (weighted sum)"].Cumulative, "ws-acc")
}

// BenchmarkTable8HybridSNS runs the SNS2-vs-SNS1 hybrid grid.
func BenchmarkTable8HybridSNS(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	var res map[string]eval.Result
	for i := 0; i < b.N; i++ {
		res = s.Table8()
	}
	b.ReportMetric(res["Shape+Color (weighted sum)"].Cumulative, "ws-acc")
}

// BenchmarkTable9DescriptorClasswise reruns the descriptor grid whose
// class-wise breakdown is Table 9 (same runs as Table 3; the bench
// reports the collapse of the textureless paper class).
func BenchmarkTable9DescriptorClasswise(b *testing.B) {
	s := getBenchSuite(b)
	b.ResetTimer()
	var last experiments.Table3Result
	for i := 0; i < b.N; i++ {
		last = s.Table3(0.5)
	}
	b.ReportMetric(last.Classwise["SIFT"].PerClass[synth.Paper].Accuracy, "sift-paper-acc")
	b.ReportMetric(last.Classwise["SIFT"].PerClass[synth.Chair].Accuracy, "sift-chair-acc")
}

// --- Concurrency benches (worker-pool recognition engine) ---

// BenchmarkRunParallel measures the pooled query sweep against the
// serial baseline on the hybrid pipeline (the paper's most consistent
// configuration), SNS2 queries vs the SNS1 gallery. The workers=cpu
// variant is the speedup the ≥2x acceptance bar refers to.
func BenchmarkRunParallel(b *testing.B) {
	s := getBenchSuite(b)
	p := pipeline.DefaultHybrid(pipeline.WeightedSum)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipeline.Run(p, s.SNS2, s.GallerySNS1)
		}
	})
	for _, w := range []int{2, 4} {
		b.Run("workers="+itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pipeline.RunParallel(p, s.SNS2, s.GallerySNS1, w)
			}
		})
	}
	b.Run("workers=cpu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipeline.RunParallel(p, s.SNS2, s.GallerySNS1, 0)
		}
	})
}

// BenchmarkRunParallelDescriptor measures the pooled query sweep for the
// §3.3 descriptor pipelines (SIFT/SURF/ORB), SNS2 queries vs the SNS1
// gallery — the matching-bound workload the flat-index engine targets.
// Galleries are prepared outside the timed loop so the numbers isolate
// extraction + matching, and -benchmem exposes the per-query allocation
// behaviour of the matching loop.
func BenchmarkRunParallelDescriptor(b *testing.B) {
	s := getBenchSuite(b)
	for _, kind := range []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB} {
		p := pipeline.NewDescriptor(kind, 0.5)
		p.Prepare(s.GallerySNS1, 0)
		for _, w := range []int{1, 4} {
			b.Run(kind.String()+"/workers="+itoa(w), func(b *testing.B) {
				var acc float64
				for i := 0; i < b.N; i++ {
					pred, truth := pipeline.RunParallel(p, s.SNS2, s.GallerySNS1, w)
					acc = eval.Evaluate(truth, pred).Cumulative
				}
				b.ReportMetric(acc, "acc")
			})
		}
		b.Run(kind.String()+"/workers=cpu", func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				pred, truth := pipeline.RunParallel(p, s.SNS2, s.GallerySNS1, 0)
				acc = eval.Evaluate(truth, pred).Cumulative
			}
			b.ReportMetric(acc, "acc")
		})
	}
}

// BenchmarkGoodMatchCount isolates the descriptor-matching kernel on
// synthetic float (SIFT-shaped) and binary (ORB-shaped) sets.
func BenchmarkGoodMatchCount(b *testing.B) {
	r := rng.New(3)
	mkFloat := func(n, dim int) *features.Set {
		s := &features.Set{}
		for i := 0; i < n; i++ {
			d := make([]float32, dim)
			for j := range d {
				d[j] = float32(r.Float64())
			}
			s.Float = append(s.Float, d)
			s.Keypoints = append(s.Keypoints, features.Keypoint{})
		}
		return s
	}
	mkBinary := func(n, bytes int) *features.Set {
		s := &features.Set{}
		for i := 0; i < n; i++ {
			d := make([]byte, bytes)
			for j := range d {
				d[j] = byte(r.Intn(256))
			}
			s.Binary = append(s.Binary, d)
			s.Keypoints = append(s.Keypoints, features.Keypoint{})
		}
		return s
	}
	qf, tf := mkFloat(80, 128), mkFloat(80, 128)
	qb, tb := mkBinary(150, 32), mkBinary(150, 32)
	b.Run("float128", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match.GoodMatchCount(qf, tf, 0.5)
		}
	})
	b.Run("binary256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			match.GoodMatchCount(qb, tb, 0.5)
		}
	})
}

// BenchmarkGalleryPrepareParallel measures pooled gallery construction
// plus ORB descriptor extraction against the single-worker path.
func BenchmarkGalleryPrepareParallel(b *testing.B) {
	s := getBenchSuite(b)
	params := pipeline.DefaultDescriptorParams()
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := pipeline.NewGalleryWorkers(s.SNS1, workers)
				g.PrepareDescriptorsWorkers(pipeline.ORB, params, workers)
			}
		}
	}
	b.Run("serial", run(1))
	b.Run("workers=4", run(4))
	b.Run("workers=cpu", run(0))
}

// --- Serving benches (sharded gallery + snapshot + batcher) ---

// BenchmarkServeThroughput measures steady-state serving throughput of
// the single-query path — one SIFT query scanned across N index shards
// in parallel — over the SNS2 query set, reporting queries/sec per
// shard count. Results are bit-identical at every shard count, so the
// qps column is a pure scaling curve.
func BenchmarkServeThroughput(b *testing.B) {
	s := getBenchSuite(b)
	p := pipeline.NewDescriptor(pipeline.SIFT, 0.5)
	p.Prepare(s.GallerySNS1, 0)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			sg := pipeline.NewShardedGallery(s.GallerySNS1, shards)
			sg.Classify(p, s.SNS2.Samples[0].Image) // build the shard split outside the timing
			b.ResetTimer()
			start := time.Now()
			n := 0
			for i := 0; i < b.N; i++ {
				for _, q := range s.SNS2.Samples {
					sg.Classify(p, q.Image)
					n++
				}
			}
			b.ReportMetric(float64(n)/time.Since(start).Seconds(), "qps")
		})
	}
}

// BenchmarkQueryExtract isolates query-side descriptor extraction — the
// dominant cost of single-query serving — per descriptor family, fresh
// (a heap allocation per intermediate, the pre-PR-4 behaviour) vs
// pooled (a warm per-worker ExtractCtx, the serving hot path). Outputs
// are bit-identical; -benchmem shows the pooled path's ~0 allocs/op.
func BenchmarkQueryExtract(b *testing.B) {
	s := getBenchSuite(b)
	img := s.SNS2.Samples[0].Image
	params := pipeline.DefaultDescriptorParams()
	for _, kind := range []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB} {
		b.Run(kind.String()+"/fresh", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pipeline.ExtractDescriptors(img, kind, params)
			}
		})
		b.Run(kind.String()+"/pooled", func(b *testing.B) {
			ctx := pipeline.NewExtractCtx()
			pipeline.ExtractDescriptorsCtx(img, kind, params, ctx) // warm the arena
			ctx.Reset()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pipeline.ExtractDescriptorsCtx(img, kind, params, ctx)
				ctx.Reset()
			}
		})
	}
}

// BenchmarkObsOverhead measures the instrumentation tax on the warm
// single-query classify path: the identical workload with the pipeline
// metrics disabled (every record site is one atomic pointer load and a
// branch) vs enabled (stage trace, ANN scan histograms, context-pool
// counters). Both runs stay at 0 allocs/op; the ns/op delta is the
// overhead budget the observability work is held to (≤ 2%).
func BenchmarkObsOverhead(b *testing.B) {
	s := getBenchSuite(b)
	img := s.SNS2.Samples[0].Image
	p := pipeline.NewDescriptor(pipeline.ORB, 0.5)
	p.Prepare(s.GallerySNS1, 1)
	for _, on := range []bool{false, true} {
		name := "obs=off"
		if on {
			name = "obs=on"
		}
		b.Run(name, func(b *testing.B) {
			if on {
				pipeline.EnableObs(obs.NewRegistry())
				defer pipeline.DisableObs()
			} else {
				pipeline.DisableObs()
			}
			for i := 0; i < 3; i++ { // warm the context pool
				p.Classify(img, s.GallerySNS1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Classify(img, s.GallerySNS1)
			}
		})
	}
}

// BenchmarkDetectScene times the scene-level detect-then-classify loop
// — region proposal plus per-crop hybrid classification on the pooled
// query path — on a fixed 3-object scene at several worker counts, and
// reports the region count so a proposer change that alters coverage is
// visible next to the timing.
func BenchmarkDetectScene(b *testing.B) {
	s := getBenchSuite(b)
	sc := synth.ComposeSceneP(synth.SceneParams{
		W: 320, H: 240, Seed: 11,
		Classes: []synth.Class{synth.Chair, synth.Bottle, synth.Lamp},
		Clutter: 2,
	})
	p := pipeline.DefaultHybrid(pipeline.WeightedSum)
	for _, workers := range []int{1, 4} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			var regions int
			for i := 0; i < b.N; i++ {
				regions = len(pipeline.Detect(sc.Image, p, s.GallerySNS1, pipeline.DetectParams{Workers: workers}))
			}
			b.ReportMetric(float64(regions), "regions")
		})
	}
}

// BenchmarkSceneRobustness runs a reduced robustness sweep (the full
// grid is the experiments binary's job) and reports the localisation
// and end-to-end accuracies as custom metrics, so BENCH_<n>.json tracks
// detection quality alongside speed.
func BenchmarkSceneRobustness(b *testing.B) {
	s := getBenchSuite(b)
	ax := experiments.SceneAxes{
		Occlusion: []float64{0, 0.5},
		Noise:     []float64{0, 12},
		Objects:   []int{1, 3},
		Scenes:    2,
	}
	p := pipeline.DefaultHybrid(pipeline.WeightedSum)
	var res experiments.SceneRobustnessResult
	for i := 0; i < b.N; i++ {
		res = s.SceneRobustness(p, ax)
	}
	var gt, loc, correct int
	for _, c := range res.Cells {
		gt += c.GT
		loc += c.Localized
		correct += c.Correct
	}
	b.ReportMetric(float64(loc)/float64(gt), "loc_acc")
	b.ReportMetric(float64(correct)/float64(gt), "cls_acc")
}

// BenchmarkServeBatcher pushes concurrent queries through the request
// batcher (the daemon's coalescing path) and reports aggregate
// queries/sec — the serving-throughput number the ROADMAP's scaling
// story tracks.
func BenchmarkServeBatcher(b *testing.B) {
	s := getBenchSuite(b)
	p := pipeline.NewDescriptor(pipeline.ORB, 0.5)
	p.Prepare(s.GallerySNS1, 0)
	sg := pipeline.NewShardedGallery(s.GallerySNS1, 4)
	bt := serve.NewBatcher(sg, p, serve.Config{MaxBatch: 16, BatchWait: time.Millisecond, QueueCap: 4096})
	defer bt.Close()
	ctx := context.Background()
	img := s.SNS2.Samples[0].Image
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := bt.Submit(ctx, img); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "qps")
}

// BenchmarkSnapshot measures gallery snapshot save and load against the
// cold-start preparation they replace.
func BenchmarkSnapshot(b *testing.B) {
	s := getBenchSuite(b)
	params := pipeline.DefaultDescriptorParams()
	for _, k := range []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB} {
		s.GallerySNS1.PrepareDescriptors(k, params)
	}
	snap := &snapshot.Snapshot{
		Name:    "sns1",
		Meta:    snapshot.Meta{Dataset: "sns1", Size: s.Scale.ImageSize, Seed: s.Scale.Seed},
		Gallery: s.GallerySNS1,
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, snap); err != nil {
		b.Fatal(err)
	}
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if err := snapshot.Write(&w, snap); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := snapshot.Read(bytes.NewReader(buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-prepare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := pipeline.NewGallery(s.SNS1)
			for _, k := range []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB} {
				g.PrepareDescriptors(k, params)
			}
		}
	})
}

// BenchmarkSnapshotMap measures the v2 zero-copy boot path against the
// heap decode it replaces, on the same on-disk gallery: "map" aliases
// the packed matrices straight off the (warm, page-cached) mapping in
// O(structure) time, "heap-load" is snapshot.Load's full decode. The
// gallery is rendered at full resolution (96 px, all three descriptor
// families) rather than the deliberately tiny Quick-suite scale:
// mmap's constituency is large galleries, where the O(bytes)-vs-
// O(structure) separation the format exists for actually shows. The
// first Map of the sub-benchmark is the cold mapping (reported once as
// cold_ns); subsequent iterations ride the page cache.
func BenchmarkSnapshotMap(b *testing.B) {
	params := pipeline.DefaultDescriptorParams()
	g := pipeline.NewGalleryWorkers(dataset.BuildSNS1(dataset.Config{Size: 96, Seed: 1}), 0)
	for _, k := range []pipeline.DescriptorKind{pipeline.SIFT, pipeline.SURF, pipeline.ORB} {
		g.PrepareDescriptorsWorkers(k, params, 0)
	}
	snap := &snapshot.Snapshot{
		Name:    "sns1",
		Meta:    snapshot.Meta{Dataset: "sns1", Size: 96, Seed: 1},
		Gallery: g,
	}
	path := filepath.Join(b.TempDir(), "bench.snap")
	if err := snapshot.Save(path, snap); err != nil {
		b.Fatal(err)
	}
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		cold := time.Now()
		m, err := snapshot.Map(path)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(time.Since(cold).Nanoseconds()), "cold_ns")
		m.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := snapshot.Map(path)
			if err != nil {
				b.Fatal(err)
			}
			m.Close()
		}
	})
	b.Run("heap-load", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := snapshot.Load(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationHistogramBins sweeps the joint histogram resolution.
func BenchmarkAblationHistogramBins(b *testing.B) {
	s := getBenchSuite(b)
	for _, bins := range []int{4, 8, 16} {
		b.Run(itoa(bins), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				correct, total := 0, 0
				for _, q := range s.SNS2.Samples {
					hq := histogram.Compute(contour.Preprocess(q.Image).Cropped, bins).Normalize()
					best, bestD := synth.Chair, 1e18
					for _, v := range s.SNS1.Samples {
						hv := histogram.Compute(contour.Preprocess(v.Image).Cropped, bins).Normalize()
						d := histogram.Compare(hq, hv, histogram.Hellinger)
						if d < bestD {
							bestD, best = d, v.Class
						}
					}
					if best == q.Class {
						correct++
					}
					total++
				}
				b.ReportMetric(float64(correct)/float64(total), "acc")
			}
		})
	}
}

// BenchmarkAblationMomentSource compares Hu moments computed on the
// contour polygon vs the filled raster.
func BenchmarkAblationMomentSource(b *testing.B) {
	s := getBenchSuite(b)
	run := func(b *testing.B, useContour bool) {
		for i := 0; i < b.N; i++ {
			correct := 0
			for _, q := range s.SNS2.Samples {
				pre := contour.Preprocess(q.Image)
				var hu moments.Hu
				if useContour && pre.Largest != nil {
					hu = moments.HuFromContour(pre.Largest.Points)
				} else {
					hu = moments.HuFromGray(pre.Binary, true)
				}
				best, bestD := synth.Chair, 1e18
				for _, v := range s.GallerySNS1.Views {
					d := moments.MatchShapes(hu, v.Hu, moments.MatchI3)
					if d < bestD {
						bestD, best = d, v.Sample.Class
					}
				}
				if best == q.Class {
					correct++
				}
			}
			b.ReportMetric(float64(correct)/float64(s.SNS2.Len()), "acc")
		}
	}
	b.Run("contour", func(b *testing.B) { run(b, true) })
	b.Run("raster", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationHybridWeights sweeps alpha/beta of the hybrid score
// (the paper's future-work tuning).
func BenchmarkAblationHybridWeights(b *testing.B) {
	s := getBenchSuite(b)
	for _, alpha := range []float64{0.0, 0.3, 0.5, 0.7, 1.0} {
		b.Run("alpha="+ftoa(alpha), func(b *testing.B) {
			p := pipeline.Hybrid{
				ShapeMethod: moments.MatchI3,
				ColorMetric: histogram.Hellinger,
				Alpha:       alpha, Beta: 1 - alpha,
				Strategy: pipeline.WeightedSum,
			}
			for i := 0; i < b.N; i++ {
				pred, truth := pipeline.Run(p, s.SNS2, s.GallerySNS1)
				b.ReportMetric(eval.Evaluate(truth, pred).Cumulative, "acc")
			}
		})
	}
}

// BenchmarkAblationKNNVote sweeps the vote size of the extension
// pipeline (K = 1 reduces to the paper's hybrid weighted sum).
func BenchmarkAblationKNNVote(b *testing.B) {
	s := getBenchSuite(b)
	for _, k := range []int{1, 3, 5, 9} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			p := pipeline.NewKNNVote(k)
			for i := 0; i < b.N; i++ {
				pred, truth := pipeline.Run(p, s.SNS2, s.GallerySNS1)
				b.ReportMetric(eval.Evaluate(truth, pred).Cumulative, "acc")
			}
		})
	}
}

// BenchmarkAblationMatcherANN compares brute-force matching against the
// KD-tree approximate matcher (the paper's FLANN remark: no gains at
// this data scale).
func BenchmarkAblationMatcherANN(b *testing.B) {
	r := rng.New(77)
	const n, dim = 400, 64
	descs := make([][]float32, n)
	for i := range descs {
		d := make([]float32, dim)
		for j := range d {
			d[j] = float32(r.Float64())
		}
		descs[i] = d
	}
	queries := make([][]float32, 50)
	for i := range queries {
		d := make([]float32, dim)
		for j := range d {
			d[j] = float32(r.Float64())
		}
		queries[i] = d
	}
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				best := float32(1e30)
				for _, t := range descs {
					var sum float32
					for k := range q {
						d := q[k] - t[k]
						sum += d * d
					}
					if sum < best {
						best = sum
					}
				}
			}
		}
	})
	b.Run("kdtree", func(b *testing.B) {
		tree := match.NewKDTree(descs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				tree.Search(q, 1, 64)
			}
		}
	})
}

// BenchmarkAblationXCorrWindow sweeps the Normalized-X-Corr search
// window width, trading inexactness for compute.
func BenchmarkAblationXCorrWindow(b *testing.B) {
	r := rng.New(5)
	mk := func() *nn.Tensor {
		t := nn.NewTensor(1, 4, 8, 8)
		for i := range t.Data {
			t.Data[i] = float32(r.NormRange(0, 1))
		}
		return t
	}
	a, c := mk(), mk()
	for _, win := range []int{1, 3, 5} {
		b.Run("w="+itoa(win), func(b *testing.B) {
			layer := nn.NewNormXCorr(3, win, win)
			for i := 0; i < b.N; i++ {
				out := layer.Forward2(a, c)
				if out.Size() == 0 {
					b.Fatal("empty output")
				}
			}
		})
	}
}

// BenchmarkAblationPreprocessing measures the §3.2 cascade's effect:
// colour matching with and without the crop-to-contour preprocessing.
func BenchmarkAblationPreprocessing(b *testing.B) {
	s := getBenchSuite(b)
	run := func(b *testing.B, preprocess bool) {
		for i := 0; i < b.N; i++ {
			correct := 0
			for _, q := range s.SNS2.Samples {
				img := q.Image
				var hq *histogram.Hist
				if preprocess {
					hq = histogram.Compute(contour.Preprocess(img).Cropped, pipeline.HistBins).Normalize()
				} else {
					hq = histogram.Compute(img, pipeline.HistBins).Normalize()
				}
				best, bestD := synth.Chair, 1e18
				for _, v := range s.SNS1.Samples {
					var hv *histogram.Hist
					if preprocess {
						hv = histogram.Compute(contour.Preprocess(v.Image).Cropped, pipeline.HistBins).Normalize()
					} else {
						hv = histogram.Compute(v.Image, pipeline.HistBins).Normalize()
					}
					d := histogram.Compare(hq, hv, histogram.Hellinger)
					if d < bestD {
						bestD, best = d, v.Class
					}
				}
				if best == q.Class {
					correct++
				}
			}
			b.ReportMetric(float64(correct)/float64(s.SNS2.Len()), "acc")
		}
	}
	b.Run("with", func(b *testing.B) { run(b, true) })
	b.Run("without", func(b *testing.B) { run(b, false) })
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func ftoa(v float64) string {
	// One decimal place suffices for the sweep labels.
	whole := int(v)
	frac := int(v*10) % 10
	return itoa(whole) + "." + itoa(frac)
}

// --- ANN matching benches (sub-linear index backends) ---

// annBenchFixture is the shared large-gallery fixture of
// BenchmarkANNRecall: a 440-view synthetic gallery (10 classes x 44
// poses per model) at 128px (dense keypoints), unseen-pose queries of
// the enrolled models, pre-extracted query sets, and the exact
// flat-scan argmax per query as the recall reference. One model per
// class keeps the novel-viewpoint task well-posed: every query has a
// unique right answer rather than near-duplicate models competing for
// it.
type annBenchFixture struct {
	g       *pipeline.Gallery
	queries map[pipeline.DescriptorKind][]*features.Set
	exact   map[pipeline.DescriptorKind][]int
}

var (
	annBenchOnce sync.Once
	annBench     *annBenchFixture
)

// annArgmax mirrors classifyCounts' first-best selection.
func annArgmax(counts []int32) int {
	best, bestScore := -1, int32(-1)
	for v, c := range counts {
		if c > bestScore {
			best, bestScore = v, c
		}
	}
	return best
}

func getANNBench(b *testing.B) *annBenchFixture {
	b.Helper()
	annBenchOnce.Do(func() {
		const (
			classes  = 10
			views    = 44
			perClass = 11
			size     = 128
			seed     = 9
		)
		g := pipeline.NewGalleryWorkers(dataset.BuildLargeAt(classes, views, size, seed), 0)
		params := pipeline.DefaultDescriptorParams()
		fx := &annBenchFixture{
			g:       g,
			queries: map[pipeline.DescriptorKind][]*features.Set{},
			exact:   map[pipeline.DescriptorKind][]int{},
		}
		qs := dataset.BuildLargeQueriesAt(classes, perClass, size, seed)
		for _, kind := range []pipeline.DescriptorKind{pipeline.ORB, pipeline.SIFT} {
			g.PrepareDescriptorsWorkers(kind, params, 0)
			ix := g.DescriptorIndexFor(kind, params)
			counts := make([]int32, ix.NumViews)
			for _, q := range qs.Samples {
				set := pipeline.ExtractDescriptors(q.Image, kind, params)
				fx.queries[kind] = append(fx.queries[kind], set)
				ix.GoodMatchCounts(set, annRatio, counts)
				fx.exact[kind] = append(fx.exact[kind], annArgmax(counts))
			}
		}
		annBench = fx
	})
	return annBench
}

const annRatio = 0.5

// BenchmarkANNRecall is the recall-vs-speedup axis of the approximate
// matching backends: per descriptor family it times pure matching
// (query sets pre-extracted) through the flat scan and through the
// default-setting ANN backend over the same 440-view gallery, and
// reports the backend's recall@1 against the flat argmax plus its
// measured single-worker speedup. The flat sub-benches are the
// baseline rows; mih/ivf rows carry the recall and speedup metrics the
// CI smoke gates on (ivf/SIFT is the gating row — SIFT is the paper's
// primary descriptor, and low-entropy synthetic ORB codes keep the
// flat Hamming scan competitive with any bucketed probe).
//
// Each timed iteration is a full pass over all queries, so ns/op (and
// the flat-vs-ANN ratio) is stable at small -benchtime counts instead
// of depending on which queries the iteration budget happened to
// cover; the reported metric is normalized to per-query nanoseconds.
func BenchmarkANNRecall(b *testing.B) {
	fx := getANNBench(b)
	params := pipeline.DefaultDescriptorParams()

	time1 := func(b *testing.B, mi pipeline.MatchIndex, kind pipeline.DescriptorKind) float64 {
		queries := fx.queries[kind]
		counts := make([]int32, mi.Flat().NumViews)
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				mi.GoodMatchCounts(q, annRatio, counts)
			}
		}
		perQuery := float64(time.Since(start).Nanoseconds()) / float64(b.N*len(queries))
		b.ReportMetric(perQuery, "ns/query")
		return perQuery
	}
	recall := func(mi pipeline.MatchIndex, kind pipeline.DescriptorKind) float64 {
		queries := fx.queries[kind]
		counts := make([]int32, mi.Flat().NumViews)
		agree := 0
		for i, q := range queries {
			mi.GoodMatchCounts(q, annRatio, counts)
			if annArgmax(counts) == fx.exact[kind][i] {
				agree++
			}
		}
		return float64(agree) / float64(len(queries))
	}

	for _, kind := range []pipeline.DescriptorKind{pipeline.ORB, pipeline.SIFT} {
		ix := fx.g.DescriptorIndexFor(kind, params)
		var flatNs float64
		b.Run("flat/"+kind.String(), func(b *testing.B) {
			flatNs = time1(b, ix, kind)
		})
		var ann pipeline.MatchIndex
		var name string
		if kind == pipeline.ORB {
			ann, name = pipeline.NewMIHIndex(ix, pipeline.MIHParams{}), "mih"
		} else {
			ann, name = pipeline.NewIVFIndex(ix, pipeline.IVFParams{}), "ivf"
		}
		rec := recall(ann, kind)
		b.Run(name+"/"+kind.String(), func(b *testing.B) {
			annNs := time1(b, ann, kind)
			b.ReportMetric(rec, "recall")
			if annNs > 0 && flatNs > 0 {
				b.ReportMetric(flatNs/annNs, "speedup")
			}
		})
	}
}
